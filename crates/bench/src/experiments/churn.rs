//! Multi-tenant churn experiment (`figc3`, robustness extension, not in
//! the paper): three ETL tenants with different SLO classes arrive on a
//! calendar, a flash crowd triples the premium tenant's rate mid-run, two
//! more tenants probe admission while the box is saturated, and the
//! best-effort tenant departs near the end — all while a seeded
//! [`FaultPlan`] corrupts metrics.
//!
//! The run exercises the whole overload-protection stack at once:
//!
//! * **Admission control** gates every arrival on the DRS-style CPU
//!   budget; the walk-in probe is queued and the whale probe rejected.
//! * **Backpressure** throttles the premium/standard sources during the
//!   flash crowd instead of letting queues grow without bound.
//! * **Load shedding** drops from the best-effort tenant's queue heads,
//!   keeping its latency bounded at the price of completeness.
//! * **The starvation watchdog** boosts any operator that stops getting
//!   CPU and would degrade the most expendable tenant if boosts failed.
//!
//! Verdicts are written to the figure notes and — like every robustness
//! claim in this repo — validated *from the trace alone*: the run always
//! records kernel events internally, and the no-starvation verdict comes
//! from [`crate::trace::validate_no_starvation`] replaying them.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    AdmissionConfig, AdmissionController, AdmissionDecision, LachesisBuilder, NiceTranslator,
    QueueSizePolicy, Scope, SloClass, StoreDriver, WatchdogConfig,
};
use lachesis_metrics::FaultPlan;
use simos::{machines, Kernel, SimDuration, SimTime, TraceEvent, TraceTrack};
use spe::{deploy, EngineConfig, OverloadMode, Placement, RunningQuery, SpeKind};

use crate::harness::{average_runs, new_store, GoalKind, Measured, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::ExpOptions;

/// Bound on every operator input queue: small enough that overload
/// surfaces quickly (throttling or shedding), large enough for batching.
const QUEUE_CAP: usize = 32;

/// Per-class end-to-end p99 latency target, in seconds. Generous on
/// purpose: the claim under test is *bounded* latency under a 1.5×
/// overload flash crowd, not low latency.
fn slo_target_s(class: SloClass) -> f64 {
    match class {
        SloClass::Premium => 2.0,
        SloClass::Standard => 4.0,
        SloClass::BestEffort => 10.0,
    }
}

/// The three resident tenants, in driver/watchdog registration order.
const TENANTS: [(&str, SloClass, f64, OverloadMode); 3] = [
    ("gold", SloClass::Premium, 500.0, OverloadMode::Backpressure),
    ("silver", SloClass::Standard, 400.0, OverloadMode::Backpressure),
    ("bronze", SloClass::BestEffort, 400.0, OverloadMode::Shed),
];

/// What one tenant did during its active window.
#[derive(Debug, Clone)]
struct TenantOutcome {
    m: Measured,
    shed: u64,
    emitted: u64,
    throttled: u64,
    active_s: f64,
}

/// Cross-tenant summary of one churn run.
#[derive(Debug, Clone, Default)]
struct ChurnStats {
    /// `tenant=decision` strings, in decision order.
    decisions: Vec<String>,
    admitted: u64,
    queued: u64,
    rejected: u64,
    /// `starve_boost` instants found in the trace.
    boosts: u64,
    /// `degrade_tenant` instants found in the trace.
    degrades: u64,
    /// No runnable thread waited longer than the watchdog window.
    starvation_ok: bool,
    starvation_detail: String,
    /// Longest observed dispatch wait, seconds.
    max_wait_s: f64,
}

fn decision_word(d: AdmissionDecision) -> &'static str {
    match d {
        AdmissionDecision::Admit => "admit",
        AdmissionDecision::Queue => "queue",
        AdmissionDecision::Reject => "reject",
    }
}

/// Emits a supervisor-track instant marking a calendar event, so the
/// churn timeline is reconstructible from the trace alone.
fn mark(kernel: &mut Kernel, name: &'static str, args: Vec<(&'static str, f64)>) {
    if let Some(t) = kernel.trace_sink() {
        let now = kernel.now();
        t.borrow_mut()
            .push(now, TraceEvent::Instant { track: TraceTrack::Supervisor, name, args });
    }
}

/// Builds one tenant's ETL graph, renamed so metric paths stay disjoint.
fn tenant_graph(name: &str, rate: f64, seed: u64) -> spe::LogicalGraph {
    let mut g = queries::etl(rate, seed);
    g.name = format!("etl-{name}");
    g
}

fn tenant_config(overload: OverloadMode, seed: u64) -> EngineConfig {
    let mut config = EngineConfig::storm();
    config.seed = seed;
    config.queue_capacity = Some(QUEUE_CAP);
    config.overload = overload;
    config
}

/// Metric-fault windows, kept clear of the flash crowd so the watchdog
/// sees fresh samples while the box is actually overloaded.
fn churn_plan(cfg: &RunConfig, seed: u64) -> FaultPlan {
    let m = cfg.measure.as_nanos();
    let tick = |tenths: u64| SimTime::ZERO + cfg.warmup + SimDuration::from_nanos(m / 10 * tenths);
    FaultPlan::new(seed)
        .nan_values(tick(1), tick(2), 0.5)
        .metric_dropout(tick(3), tick(4), 0.3)
        .fetch_failure(Some("storm"), tick(8), tick(9), 0.5)
}

/// One churn run. Tracing is always installed (the no-starvation verdict
/// needs the raw kernel events); `ring` sizes the record buffer.
fn run_churn_inner(
    seed: u64,
    cfg: RunConfig,
    ring: Option<usize>,
    label: String,
) -> (Vec<TenantOutcome>, ChurnStats, crate::trace::TraceDump) {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    // Install before deploy so operator bodies emit batch spans too.
    let handle = kernel.install_tracing(ring);
    let store = new_store();

    let m = cfg.measure.as_nanos();
    let tick = |tenths: u64| cfg.warmup + SimDuration::from_nanos(m / 10 * tenths);

    let admission = Rc::new(RefCell::new(AdmissionController::new(
        AdmissionConfig::default(),
    )));
    // The driver's query list, shared with the arrival callbacks below so
    // tenants deployed mid-run become visible to the policies.
    let queries: Rc<RefCell<Vec<RunningQuery>>> = Rc::new(RefCell::new(Vec::new()));
    // Per-tenant handle slot (filled at arrival) and arrival/departure
    // bookkeeping for the active-window accounting.
    let slots: Vec<Rc<RefCell<Option<RunningQuery>>>> =
        (0..TENANTS.len()).map(|_| Rc::new(RefCell::new(None))).collect();
    let arrived: Rc<RefCell<Vec<Option<SimTime>>>> =
        Rc::new(RefCell::new(vec![None; TENANTS.len()]));
    let departed: Rc<RefCell<Vec<Option<SimTime>>>> =
        Rc::new(RefCell::new(vec![None; TENANTS.len()]));

    // Tenant 0 (gold/premium) is resident from the start.
    {
        let (name, _, rate, overload) = TENANTS[0];
        let g = tenant_graph(name, rate, seed);
        let d = admission
            .borrow_mut()
            .decide(&mut kernel, name, &g, &[node]);
        assert_eq!(d, AdmissionDecision::Admit, "empty box must admit gold");
        let q = deploy(
            &mut kernel,
            g,
            tenant_config(overload, seed),
            &Placement::single(node),
            Some(Rc::clone(&store)),
        )
        .expect("deploy gold");
        queries.borrow_mut().push(q.clone());
        *slots[0].borrow_mut() = Some(q);
        arrived.borrow_mut()[0] = Some(kernel.now());
    }

    // Arrivals of silver (2/10) and bronze (3/10 of the measured phase).
    for (idx, tenths) in [(1usize, 2u64), (2, 3)] {
        let (name, _, rate, overload) = TENANTS[idx];
        let admission = Rc::clone(&admission);
        let queries = Rc::clone(&queries);
        let slot = Rc::clone(&slots[idx]);
        let arrived = Rc::clone(&arrived);
        let store = Rc::clone(&store);
        let tenant_seed = seed.wrapping_add(idx as u64);
        kernel.schedule_once(tick(tenths), move |k| {
            let g = tenant_graph(name, rate, tenant_seed);
            let d = admission.borrow_mut().decide(k, name, &g, &[node]);
            if d != AdmissionDecision::Admit {
                return;
            }
            let q = deploy(
                k,
                g,
                tenant_config(overload, tenant_seed),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .expect("deploy arriving tenant");
            queries.borrow_mut().push(q.clone());
            *slot.borrow_mut() = Some(q);
            arrived.borrow_mut()[idx] = Some(k.now());
        });
    }

    // Flash crowd: gold triples its rate for 2/10 of the measured phase.
    for (tenths, rate, name) in [(5u64, 1500.0, "flash_crowd"), (7, 500.0, "flash_end")] {
        let slot = Rc::clone(&slots[0]);
        kernel.schedule_once(tick(tenths), move |k| {
            if let Some(q) = slot.borrow().as_ref() {
                for s in q.sources() {
                    s.borrow_mut().set_rate(rate);
                }
            }
            mark(k, name, vec![("tenant", 0.0), ("rate", rate)]);
        });
    }

    // Admission probes while the box is saturated: a walk-in standard
    // tenant (expect queue: it alone would fit, the box is full) and a
    // whale whose demand exceeds the whole budget (expect reject). Probes
    // record the decision without deploying; an admitted probe departs
    // again immediately so it cannot distort the resident tenants.
    for (tenths, name, rate) in [(6u64, "walkin", 400.0), (6, "whale", 2600.0)] {
        let admission = Rc::clone(&admission);
        kernel.schedule_once(tick(tenths), move |k| {
            let g = tenant_graph(name, rate, 1);
            let d = admission.borrow_mut().decide(k, name, &g, &[node]);
            if d == AdmissionDecision::Admit {
                admission.borrow_mut().depart(name);
            }
        });
    }

    // Bronze departs at 8/10: its source stops and its demand is released.
    {
        let slot = Rc::clone(&slots[2]);
        let admission = Rc::clone(&admission);
        let departed = Rc::clone(&departed);
        kernel.schedule_once(tick(8), move |k| {
            if let Some(q) = slot.borrow().as_ref() {
                for s in q.sources() {
                    s.borrow_mut().set_rate(0.0);
                }
            }
            admission.borrow_mut().depart("bronze");
            departed.borrow_mut()[2] = Some(k.now());
            mark(k, "depart", vec![("tenant", 2.0)]);
        });
    }

    // Live demand refinement: Δcpu/Δt per admitted tenant, once a second.
    {
        let admission = Rc::clone(&admission);
        let slots: Vec<_> = slots.iter().map(Rc::clone).collect();
        kernel.schedule_periodic(cfg.warmup, SimDuration::from_secs(1), move |k| {
            let now = k.now();
            for ((name, ..), slot) in TENANTS.iter().zip(&slots) {
                if let Some(q) = slot.borrow().as_ref() {
                    admission.borrow_mut().observe(now, name, q);
                }
            }
        });
    }

    let plan = Rc::new(RefCell::new(churn_plan(&cfg, seed)));
    let mut builder = LachesisBuilder::new()
        .driver(
            StoreDriver::shared(SpeKind::Storm, Rc::clone(&queries), Rc::clone(&store))
                .with_faults(Rc::clone(&plan)),
        )
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::new(SimDuration::from_secs(1)),
            NiceTranslator::new(),
        )
        .watchdog(WatchdogConfig::default());
    for (idx, (name, class, _, overload)) in TENANTS.iter().enumerate() {
        // Degradation hooks: backpressure tenants flip to shedding (stay
        // deployed, get cheaper); the shed tenant is suspended outright.
        let slot = Rc::clone(&slots[idx]);
        let admission = Rc::clone(&admission);
        let hook: lachesis::DegradeHook = if *overload == OverloadMode::Backpressure {
            Box::new(move |k: &mut Kernel| {
                if let Some(q) = slot.borrow().as_ref() {
                    q.set_shed_mode(k);
                }
            })
        } else {
            Box::new(move |k: &mut Kernel| {
                if let Some(q) = slot.borrow().as_ref() {
                    for s in q.sources() {
                        s.borrow_mut().set_rate(0.0);
                    }
                }
                admission.borrow_mut().depart(name);
                let _ = k;
            })
        };
        builder = builder.tenant(name, 0, idx, *class, hook);
    }
    let lachesis = builder.build();
    lachesis.start(&mut kernel);
    crate::trace::install_counter_samplers(&mut kernel, &handle);

    // Warm up with gold alone, then measure across the churn calendar.
    kernel.run_for(cfg.warmup);
    let warm_end = kernel.now();
    if let Some(q) = slots[0].borrow().as_ref() {
        q.reset_stats();
    }
    let before = kernel.node_stats(node).expect("node stats");
    kernel.run_for(cfg.measure);
    let after = kernel.node_stats(node).expect("node stats");

    let end = kernel.now();
    let secs = cfg.measure.as_secs_f64();
    let utilization =
        (after.busy - before.busy).as_secs_f64() / (secs * after.cpus.max(1) as f64);
    let ctx_per_s = (after.ctx_switches - before.ctx_switches) as f64 / secs;
    let mut tenants = Vec::new();
    for (idx, (_, _, rate, _)) in TENANTS.iter().enumerate() {
        let slot = slots[idx].borrow();
        let q = slot.as_ref().expect("resident tenant deployed");
        // Active window: from arrival (or the start of the measured phase,
        // for tenants reset at warm-up end) to departure or run end.
        let from = arrived.borrow()[idx].map_or(warm_end, |t| t.max(warm_end));
        let until = departed.borrow()[idx].unwrap_or(end);
        let active_s = (until - from).as_secs_f64().max(1e-9);
        let latency = q.latency_histogram();
        let e2e = q.e2e_histogram();
        let pct = |h: &spe::LogHistogram, p: f64| h.quantile(p).unwrap_or(0.0);
        let emitted = q.source_emitted();
        let shed = q.total_shed();
        tenants.push(TenantOutcome {
            m: Measured {
                offered_tps: *rate,
                throughput_tps: q.ingress_total() as f64 / active_s,
                latency_mean_s: latency.mean().unwrap_or(0.0),
                latency_p: (pct(&latency, 0.5), pct(&latency, 0.99), pct(&latency, 0.999)),
                e2e_mean_s: e2e.mean().unwrap_or(0.0),
                e2e_p: (pct(&e2e, 0.5), pct(&e2e, 0.99), pct(&e2e, 0.999)),
                slo_target_s: 0.0,
                slo_miss_rate: 0.0,
                goal: 0.0,
                queue_samples: Vec::new(),
                utilization,
                ctx_switches_per_s: ctx_per_s,
                egress_tps: q.egress_total() as f64 / active_s,
            },
            shed,
            emitted,
            throttled: q.sources().iter().map(|s| s.borrow().throttled()).sum(),
            active_s,
        });
    }

    let dump = crate::trace::capture(&kernel, &handle, &label);
    let mut stats = ChurnStats::default();
    for r in admission.borrow().history() {
        stats.decisions
            .push(format!("{}={}", r.tenant, decision_word(r.decision)));
        match r.decision {
            AdmissionDecision::Admit => stats.admitted += 1,
            AdmissionDecision::Queue => stats.queued += 1,
            AdmissionDecision::Reject => stats.rejected += 1,
        }
    }
    for rec in &dump.records {
        if let TraceEvent::Instant { track: TraceTrack::Supervisor, name, .. } = &rec.event {
            match *name {
                "starve_boost" => stats.boosts += 1,
                "degrade_tenant" => stats.degrades += 1,
                _ => {}
            }
        }
    }
    // The watchdog degrades a tenant after `degrade_after` one-second
    // rounds; any runnable thread waiting much longer than that window
    // means the whole protection stack failed.
    match crate::trace::validate_no_starvation(&dump, SimDuration::from_secs(5)) {
        Ok(s) => {
            stats.starvation_ok = true;
            stats.max_wait_s = s.max_wait_s;
        }
        Err(e) => {
            stats.starvation_ok = false;
            stats.starvation_detail = e;
        }
    }
    (tenants, stats, dump)
}

/// Runs the churn experiment and returns its figure.
pub fn figc3(opts: &ExpOptions) -> Vec<Figure> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let ring = Some(if opts.quick { 1 << 21 } else { 1 << 23 });
    let seeds: Vec<u64> = (0..opts.reps.max(1) as u64).map(|r| 1 + r).collect();
    let results = crate::pool::parallel_map(opts.jobs, seeds, move |seed| {
        let (tenants, stats, _) =
            run_churn_inner(seed, cfg, ring, format!("figc3 seed={seed}"));
        (tenants, stats)
    });

    let mut fig = Figure::new(
        "figc3",
        "ETL multi-tenant churn: admission control, backpressure/shedding, starvation watchdog",
        "tenant (0=gold/premium, 1=silver/standard, 2=bronze/best-effort)",
    );
    fig.notes.push(format!(
        "calendar: gold resident; silver +2/10, bronze +3/10; gold flash 500->1500 t/s \
         [5/10,7/10); walkin+whale probes 6/10; bronze departs 8/10; reps={}",
        opts.reps
    ));

    let mut per_tenant: Vec<Vec<Measured>> = vec![Vec::new(); TENANTS.len()];
    let mut shed: Vec<u64> = vec![0; TENANTS.len()];
    let mut throttled: Vec<u64> = vec![0; TENANTS.len()];
    let mut emitted: Vec<u64> = vec![0; TENANTS.len()];
    let mut active: Vec<f64> = vec![0.0; TENANTS.len()];
    let mut all_starvation_ok = true;
    for (rep, (tenants, stats)) in results.into_iter().enumerate() {
        for (idx, t) in tenants.iter().enumerate() {
            per_tenant[idx].push(t.m.clone());
            shed[idx] += t.shed;
            throttled[idx] += t.throttled;
            emitted[idx] += t.emitted;
            active[idx] = active[idx].max(t.active_s);
        }
        all_starvation_ok &= stats.starvation_ok;
        fig.notes.push(format!(
            "rep {rep}: decisions [{}] admitted={} queued={} rejected={} boosts={} degrades={} \
             no_starvation={} max_wait={:.2}s{}",
            stats.decisions.join(" "),
            stats.admitted,
            stats.queued,
            stats.rejected,
            stats.boosts,
            stats.degrades,
            if stats.starvation_ok { "PASS" } else { "FAIL" },
            stats.max_wait_s,
            if stats.starvation_ok {
                String::new()
            } else {
                format!(" ({})", stats.starvation_detail)
            },
        ));
        let admission_ok =
            stats.admitted == 3 && stats.queued >= 1 && stats.rejected >= 1;
        if !admission_ok {
            eprintln!(
                "warning: figc3 rep {rep}: unexpected admission mix \
                 ({} admit / {} queue / {} reject)",
                stats.admitted, stats.queued, stats.rejected
            );
        }
    }

    for (idx, (name, class, ..)) in TENANTS.iter().enumerate() {
        let avg = average_runs(per_tenant[idx].clone());
        let target = slo_target_s(*class);
        let slo_ok = avg.e2e_p.1.is_finite() && avg.e2e_p.1 <= target;
        let shed_ratio = shed[idx] as f64 / (emitted[idx].max(1)) as f64;
        fig.notes.push(format!(
            "tenant {name}: slo={} (e2e p99 {:.3}s <= {target:.1}s) shed_ratio={:.4} \
             throttled={} throughput={:.0} t/s active={:.1}s",
            if slo_ok { "PASS" } else { "FAIL" },
            avg.e2e_p.1,
            shed_ratio,
            throttled[idx],
            avg.throughput_tps,
            active[idx],
        ));
        if !slo_ok {
            eprintln!("warning: figc3 tenant {name}: e2e p99 {:.3}s > {target}s", avg.e2e_p.1);
        }
        fig.series.push(Series {
            label: format!("{name} ({class:?})"),
            points: vec![SweepPoint { x: idx as f64, m: avg }],
        });
    }
    // Overload-protection shape: the shed tenant dropped tuples, the
    // backpressure tenants throttled instead of shedding.
    let shape_ok = shed[2] > 0 && shed[0] == 0 && shed[1] == 0 && throttled[0] > 0;
    fig.notes.push(format!(
        "overload_shape={} (bronze shed {} / gold+silver shed {}+{} / gold throttled {})",
        if shape_ok { "PASS" } else { "FAIL" },
        shed[2],
        shed[0],
        shed[1],
        throttled[0],
    ));
    fig.notes.push(format!(
        "no_starvation={} (validated from the kernel trace, watchdog window 5s)",
        if all_starvation_ok { "PASS" } else { "FAIL" },
    ));
    if !shape_ok || !all_starvation_ok {
        eprintln!("warning: figc3: shape_ok={shape_ok} starvation_ok={all_starvation_ok}");
    }
    vec![fig]
}

/// Traced churn trials for `repro figc3 --trace`: one run per repetition
/// through the worker pool (folded in input order, so the artifact is
/// byte-identical for any `--jobs`). Panics if the trace fails the
/// no-starvation replay or lacks the admission/churn markers — the traced
/// CI job gates on exactly this.
pub fn trace_figc3(opts: &ExpOptions, ring: Option<usize>) -> Vec<crate::trace::TraceDump> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let seeds: Vec<u64> = (0..opts.reps.max(1) as u64).map(|r| 1 + r).collect();
    crate::pool::parallel_map(opts.jobs, seeds, move |seed| {
        let (_, stats, dump) = run_churn_inner(
            seed,
            cfg,
            ring.or(Some(1 << 23)),
            format!("figc3: multi-tenant churn seed={seed}"),
        );
        assert!(
            stats.starvation_ok,
            "figc3 trace (seed {seed}) failed no-starvation replay: {}",
            stats.starvation_detail
        );
        let mut admissions = 0u64;
        let mut queued_or_rejected = 0u64;
        let mut departs = 0u64;
        let mut flashes = 0u64;
        for rec in &dump.records {
            if let TraceEvent::Instant { track: TraceTrack::Supervisor, name, args } = &rec.event
            {
                match *name {
                    "admission" => {
                        admissions += 1;
                        if args.iter().any(|(k, v)| *k == "decision" && *v > 0.0) {
                            queued_or_rejected += 1;
                        }
                    }
                    "depart" => departs += 1,
                    "flash_crowd" | "flash_end" => flashes += 1,
                    _ => {}
                }
            }
        }
        assert!(
            admissions >= 5,
            "figc3 trace (seed {seed}): expected >=5 admission instants, found {admissions}"
        );
        assert!(
            queued_or_rejected >= 1,
            "figc3 trace (seed {seed}): no queue/reject admission decision recorded"
        );
        assert_eq!(departs, 1, "figc3 trace (seed {seed}): missing depart marker");
        assert_eq!(flashes, 2, "figc3 trace (seed {seed}): missing flash markers");
        dump
    })
}
