//! Multi-SPE scheduling on a server (§6.6, Fig. 18): VS on Storm, LR on
//! Flink and 20 SYN pipelines on Liebre share one Xeon-class node. Lachesis
//! enforces a multi-dimensional schedule: one cgroup per query with equal
//! `cpu.shares`, QS + `nice` per operator inside — across all three SPEs at
//! once, the capability no UL-SS offers (G5).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    CombinedTranslator, LachesisBuilder, PriorityKind, QueueSizePolicy, Schedule, Scope,
    SpeDriver, StoreDriver, TranslateError, Translator,
};
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery, SpeKind};

use crate::harness::{new_store, Measured};
use crate::report::{Figure, Series, SweepPoint};
use crate::ExpOptions;

/// A translator shared between several policy bindings so that the
/// per-query cgroups of *different SPEs* become siblings under one root and
/// receive equal shares of the whole machine (§6.6).
pub struct SharedTranslator(pub Rc<RefCell<CombinedTranslator>>);

impl std::fmt::Debug for SharedTranslator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedTranslator").finish_non_exhaustive()
    }
}

impl Translator for SharedTranslator {
    fn name(&self) -> &str {
        "nice+cpu.shares (shared)"
    }

    fn apply(
        &mut self,
        kernel: &mut Kernel,
        driver: &dyn SpeDriver,
        schedule: &Schedule,
        kind: PriorityKind,
    ) -> Result<(), TranslateError> {
        self.0.borrow_mut().apply(kernel, driver, schedule, kind)
    }
}

struct Deployment {
    kernel: Kernel,
    node: simos::NodeId,
    storm_vs: RunningQuery,
    flink_lr: RunningQuery,
    liebre_syn: Vec<RunningQuery>,
}

fn deploy_all(rates: (f64, f64, f64), with_lachesis: bool, seed: u64) -> Deployment {
    let mut kernel = Kernel::new(machines::server_config());
    let node = machines::add_server(&mut kernel, "xeon");
    let store = new_store();
    let storm_vs = deploy(
        &mut kernel,
        queries::vs(rates.0, seed),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy VS");
    let flink_lr = deploy(
        &mut kernel,
        queries::lr(rates.1, seed),
        EngineConfig::flink(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy LR");
    // Each SYN pipeline is its own query (20 of them), so Lachesis'
    // equal-share-per-query dimension gives 22 sibling cgroups.
    let syn_cfg = queries::SynConfig::default();
    let per_pipeline_rate = rates.2 / syn_cfg.queries as f64;
    let liebre_syn: Vec<RunningQuery> = (0..syn_cfg.queries)
        .map(|i| {
            deploy(
                &mut kernel,
                queries::syn_single(i, per_pipeline_rate, syn_cfg),
                EngineConfig::liebre(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .expect("deploy SYN pipeline")
        })
        .collect();

    if with_lachesis {
        let shared = Rc::new(RefCell::new(CombinedTranslator::new("qs")));
        LachesisBuilder::new()
            .driver(StoreDriver::storm(vec![storm_vs.clone()], Rc::clone(&store)))
            .driver(StoreDriver::flink(vec![flink_lr.clone()], Rc::clone(&store)))
            .driver(StoreDriver::liebre(liebre_syn.clone(), Rc::clone(&store)))
            .policy(
                0,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                SharedTranslator(Rc::clone(&shared)),
            )
            .policy(
                1,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                SharedTranslator(Rc::clone(&shared)),
            )
            .policy(
                2,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                SharedTranslator(shared),
            )
            .build()
            .start(&mut kernel);
    }

    Deployment {
        kernel,
        node,
        storm_vs,
        flink_lr,
        liebre_syn,
    }
}

fn measure_queries(qs: &[RunningQuery], secs: f64, offered: f64) -> Measured {
    let mut latency = spe::LogHistogram::new();
    let mut e2e = spe::LogHistogram::new();
    let mut ingress = 0u64;
    let mut egress = 0u64;
    for q in qs {
        latency.merge(&q.latency_histogram());
        e2e.merge(&q.e2e_histogram());
        ingress += q.ingress_total();
        egress += q.egress_total();
    }
    let p = |h: &spe::LogHistogram, q: f64| h.quantile(q).unwrap_or(0.0);
    Measured {
        offered_tps: offered,
        throughput_tps: ingress as f64 / secs,
        latency_mean_s: latency.mean().unwrap_or(0.0),
        latency_p: (p(&latency, 0.5), p(&latency, 0.99), p(&latency, 0.999)),
        e2e_mean_s: e2e.mean().unwrap_or(0.0),
        e2e_p: (p(&e2e, 0.5), p(&e2e, 0.99), p(&e2e, 0.999)),
        slo_target_s: 0.0,
        slo_miss_rate: 0.0,
        goal: 0.0,
        queue_samples: vec![],
        utilization: 0.0,
        ctx_switches_per_s: 0.0,
        egress_tps: egress as f64 / secs,
    }
}

/// Finds each query's maximum sustainable rate "in this setup" (§6.6).
///
/// Standalone capacity is probed via the *egress* plateau far beyond
/// saturation (ingress would report the offered rate for engines without
/// spout flow control), normalized by the query's steady-state selectivity
/// measured below saturation. Standalone saturation includes heavy
/// scheduling losses, so co-deployed demand at a third of it would leave
/// the machine under-loaded; half of standalone capacity per SPE puts the
/// 100% point right at machine saturation, where the paper's comparison
/// happens.
fn calibrate_max_rates(secs: u64, jobs: usize) -> (f64, f64, f64) {
    let probe = |kind: SpeKind, low: f64, high: f64| -> f64 {
        let run = |rate: f64| -> (f64, f64) {
            let mut kernel = Kernel::new(machines::server_config());
            let node = machines::add_server(&mut kernel, "xeon");
            let (graph, config) = match kind {
                SpeKind::Storm => (queries::vs(rate, 1), EngineConfig::storm()),
                SpeKind::Flink => (queries::lr(rate, 1), EngineConfig::flink()),
                SpeKind::Liebre => (
                    queries::syn(rate, queries::SynConfig::default()),
                    EngineConfig::liebre(),
                ),
            };
            let q = deploy(&mut kernel, graph, config, &Placement::single(node), None)
                .expect("calibration deploy");
            kernel.run_for(SimDuration::from_secs(2));
            q.reset_stats();
            kernel.run_for(SimDuration::from_secs(secs));
            (
                q.ingress_total() as f64 / secs as f64,
                q.egress_total() as f64 / secs as f64,
            )
        };
        let (in_low, out_low) = run(low);
        let selectivity = (out_low / in_low).max(1e-6);
        let (_, out_high) = run(high);
        out_high / selectivity
    };
    // The three probes are independent whole-kernel runs: pool them.
    let probes = vec![
        (SpeKind::Storm, 1_000.0, 12_000.0),
        (SpeKind::Flink, 2_000.0, 20_000.0),
        (SpeKind::Liebre, 800.0, 8_000.0),
    ];
    let standalone =
        crate::pool::parallel_map(jobs, probes, |(kind, low, high)| probe(kind, low, high));
    (standalone[0] / 2.0, standalone[1] / 2.0, standalone[2] / 2.0)
}

/// Fig. 18: multi-SPE/query scheduling at 20–100% of each query's maximum
/// sustainable rate.
pub fn fig18(opts: &ExpOptions) -> Vec<Figure> {
    let (warmup, measure) = if opts.quick { (3u64, 10u64) } else { (5, 30) };
    let max = calibrate_max_rates(if opts.quick { 8 } else { 15 }, opts.jobs);
    let percents: Vec<f64> = if opts.quick {
        vec![40.0, 100.0]
    } else {
        vec![20.0, 40.0, 60.0, 80.0, 100.0]
    };
    let mut fig = Figure::new(
        "fig18",
        "Multi-SPE/query scheduling of VS (Storm), LR (Flink), SYN (Liebre) on a server",
        "% of max rate",
    );
    fig.notes.push(format!(
        "calibrated shared max rates (standalone/2): VS={:.0} t/s, LR={:.0} t/s, SYN={:.0} t/s",
        max.0, max.1, max.2
    ));
    let mut series: Vec<Series> = Vec::new();
    for label in [
        "storm-VS:OS",
        "storm-VS:LACHESIS",
        "flink-LR:OS",
        "flink-LR:LACHESIS",
        "liebre-SYN:OS",
        "liebre-SYN:LACHESIS",
    ] {
        series.push(Series {
            label: label.into(),
            points: vec![],
        });
    }
    // Each (pct, with_lachesis) cell is an independent full deployment:
    // pool the cells, fold back in input order.
    let cells: Vec<(f64, bool)> = percents
        .iter()
        .flat_map(|&pct| [(pct, false), (pct, true)])
        .collect();
    let mut results =
        crate::pool::parallel_map(opts.jobs, cells, |(pct, with_lachesis)| {
            let rates = (
                max.0 * pct / 100.0,
                max.1 * pct / 100.0,
                max.2 * pct / 100.0,
            );
            let mut d = deploy_all(rates, with_lachesis, 1);
            d.kernel.run_for(SimDuration::from_secs(warmup));
            d.storm_vs.reset_stats();
            d.flink_lr.reset_stats();
            for q in &d.liebre_syn {
                q.reset_stats();
            }
            d.kernel.run_for(SimDuration::from_secs(measure));
            let secs = measure as f64;
            let _ = d.kernel.node_stats(d.node).unwrap();
            (
                measure_queries(std::slice::from_ref(&d.storm_vs), secs, rates.0),
                measure_queries(std::slice::from_ref(&d.flink_lr), secs, rates.1),
                measure_queries(&d.liebre_syn, secs, rates.2),
            )
        })
        .into_iter();
    for &pct in &percents {
        for with_lachesis in [false, true] {
            let (vs, lr, syn) = results.next().expect("one result per cell");
            let offset = usize::from(with_lachesis);
            series[offset].points.push(SweepPoint { x: pct, m: vs });
            series[2 + offset].points.push(SweepPoint { x: pct, m: lr });
            series[4 + offset].points.push(SweepPoint { x: pct, m: syn });
        }
    }
    fig.series = series;
    vec![fig]
}
