//! Single-query experiments: ETL/STATS vs EdgeWise (§6.2, Figs. 5–8) and
//! LR/VS on Storm/Flink vs OS and RANDOM (§6.3, Figs. 9–13).

use spe::{LogHistogram, LogicalGraph, SpeKind};

use crate::harness::{average_runs, GoalKind, RunConfig};
use crate::report::{queue_distribution, Figure, Series, SweepPoint};
use crate::schedulers::{run_point, PointSpec, Sched};
use crate::ExpOptions;

/// Which evaluation query to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryKind {
    /// RIoTBench ETL.
    Etl,
    /// RIoTBench STATS.
    Stats,
    /// Linear Road.
    Lr,
    /// VoipStream.
    Vs,
}

impl QueryKind {
    /// Builds the query's logical graph.
    pub fn build(self, rate: f64, seed: u64) -> LogicalGraph {
        match self {
            QueryKind::Etl => queries::etl(rate, seed),
            QueryKind::Stats => queries::stats(rate, seed),
            QueryKind::Lr => queries::lr(rate, seed),
            QueryKind::Vs => queries::vs(rate, seed),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::Etl => "ETL",
            QueryKind::Stats => "STATS",
            QueryKind::Lr => "LR",
            QueryKind::Vs => "VS",
        }
    }
}

/// Declarative description of one single-query figure group.
#[derive(Debug, Clone)]
pub struct SingleQueryExp {
    /// Main figure id (e.g. `"fig5"`).
    pub fig_id: &'static str,
    /// Figure title.
    pub title: &'static str,
    /// Workload.
    pub query: QueryKind,
    /// Engine personality.
    pub engine: SpeKind,
    /// Schedulers compared.
    pub scheds: Vec<Sched>,
    /// Rate sweep (full runs).
    pub rates: Vec<f64>,
    /// Companion queue-size-distribution figure (Figs. 6/8).
    pub queue_fig: Option<(&'static str, &'static str)>,
    /// Companion tail-latency (letter values) figure (Fig. 13 panels).
    pub tail_fig: Option<(&'static str, &'static str)>,
}

fn thin_rates(rates: &[f64], quick: bool) -> Vec<f64> {
    if !quick || rates.len() <= 4 {
        return rates.to_vec();
    }
    // Keep ~4 points: first, two middle, last.
    let n = rates.len();
    let picks = [0, n / 3, 2 * n / 3, n - 1];
    picks.iter().map(|&i| rates[i]).collect()
}

/// Runs the experiment and returns the produced figures.
pub fn run(exp: &SingleQueryExp, opts: &ExpOptions) -> Vec<Figure> {
    let rates = thin_rates(&exp.rates, opts.quick);
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };

    let mut main_fig = Figure::new(exp.fig_id, exp.title, "rate (t/s)");
    main_fig.notes.push(format!(
        "query={} engine={:?} reps={}",
        exp.query.name(),
        exp.engine,
        opts.reps
    ));
    let mut queue_fig = exp
        .queue_fig
        .map(|(id, title)| Figure::new(id, title, "rate (t/s)"));
    let mut tail_fig = exp
        .tail_fig
        .map(|(id, title)| Figure::new(id, title, "quantile"));

    // Every (scheduler, rate, rep) trial is independent: fan them out
    // across the worker pool, then fold the results back below in input
    // order — identical output for any `--jobs` value.
    let trials: Vec<(usize, f64, u64)> = exp
        .scheds
        .iter()
        .enumerate()
        .flat_map(|(si, _)| {
            rates
                .iter()
                .flat_map(move |&rate| (0..opts.reps as u64).map(move |rep| (si, rate, rep)))
        })
        .collect();
    let mut results = crate::pool::parallel_map(opts.jobs, trials, |(si, rate, rep)| {
        let query = exp.query;
        run_point(PointSpec {
            graph: Box::new(move |r, s| query.build(r, s)),
            engine: exp.engine,
            sched: exp.scheds[si].clone(),
            rate,
            seed: 1 + rep,
            cfg,
            blocking: None,
            downstream: vec![],
        })
    })
    .into_iter();

    for sched in &exp.scheds {
        let mut points = Vec::new();
        let mut qpoints = Vec::new();
        // Tail distributions at the highest rate, merged over reps.
        let mut tail_hist = LogHistogram::new();
        for &rate in &rates {
            let mut runs = Vec::new();
            for _rep in 0..opts.reps {
                let (m, d) = results.next().expect("one result per trial");
                if rate == *rates.last().unwrap() {
                    tail_hist.merge(&d.latency);
                }
                runs.push(m);
            }
            let avg = average_runs(runs);
            if queue_fig.is_some() {
                let (p25, p50, p75, p95, p99, max) = queue_distribution(&avg.queue_samples);
                let mut m2 = avg.clone();
                m2.queue_samples = vec![];
                // Encode the distribution in the point's latency fields is
                // ugly; instead keep a dedicated series per statistic below.
                qpoints.push((rate, (p25, p50, p75, p95, p99, max), m2));
            }
            let mut slim = avg;
            slim.queue_samples.clear();
            points.push(SweepPoint { x: rate, m: slim });
        }
        main_fig.series.push(Series {
            label: sched.label(),
            points,
        });
        if let Some(fig) = &mut queue_fig {
            // One series per scheduler per statistic.
            for (stat_idx, stat_name) in
                ["p25", "p50", "p75", "p95", "p99", "max"].iter().enumerate()
            {
                let points = qpoints
                    .iter()
                    .map(|(rate, dist, m)| {
                        let v = [dist.0, dist.1, dist.2, dist.3, dist.4, dist.5][stat_idx];
                        let mut m = m.clone();
                        m.goal = v; // the "goal" column carries the statistic
                        SweepPoint { x: *rate, m }
                    })
                    .collect();
                fig.series.push(Series {
                    label: format!("{}:{}", sched.label(), stat_name),
                    points,
                });
            }
        }
        if let Some(fig) = &mut tail_fig {
            let lvs = tail_hist.letter_values(3);
            let points = lvs
                .into_iter()
                .map(|(q, v)| {
                    let mut m = crate::harness::Measured {
                        offered_tps: *rates.last().unwrap(),
                        throughput_tps: 0.0,
                        latency_mean_s: v,
                        latency_p: (0.0, 0.0, 0.0),
                        e2e_mean_s: 0.0,
                        e2e_p: (0.0, 0.0, 0.0),
                        slo_target_s: 0.0,
                        slo_miss_rate: 0.0,
                        goal: v,
                        queue_samples: vec![],
                        utilization: 0.0,
                        ctx_switches_per_s: 0.0,
                        egress_tps: 0.0,
                    };
                    m.latency_p.0 = v;
                    SweepPoint { x: q, m }
                })
                .collect();
            fig.series.push(Series {
                label: sched.label(),
                points,
            });
        }
    }

    let mut figs = vec![main_fig];
    if let Some(mut f) = queue_fig {
        f.notes
            .push("'policy goal' column carries the queue-size statistic".into());
        figs.push(f);
    }
    if let Some(mut f) = tail_fig {
        f.notes.push(format!(
            "latency letter values at rate {}",
            rates.last().unwrap()
        ));
        figs.push(f);
    }
    figs
}

/// Fig. 5/6: ETL on Storm vs EdgeWise and OS.
pub fn fig5() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig5",
        title: "ETL in Storm: OS vs EDGEWISE vs LACHESIS-QS",
        query: QueryKind::Etl,
        engine: SpeKind::Storm,
        scheds: vec![
            Sched::Os,
            Sched::EdgeWise,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![1000.0, 1200.0, 1375.0, 1500.0, 1625.0, 1750.0, 1900.0],
        queue_fig: Some(("fig6", "ETL input queue size distributions")),
        tail_fig: None,
    }
}

/// Fig. 7/8: STATS on Storm vs EdgeWise and OS.
pub fn fig7() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig7",
        title: "STATS in Storm: OS vs EDGEWISE vs LACHESIS-QS",
        query: QueryKind::Stats,
        engine: SpeKind::Storm,
        scheds: vec![
            Sched::Os,
            Sched::EdgeWise,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![240.0, 280.0, 320.0, 340.0, 360.0, 400.0, 440.0],
        queue_fig: Some(("fig8", "STATS input queue size distributions")),
        tail_fig: None,
    }
}

/// Fig. 9 (+13a): LR on Storm vs OS and RANDOM.
pub fn fig9() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig9",
        title: "LR in Storm: OS vs RANDOM vs LACHESIS-QS",
        query: QueryKind::Lr,
        engine: SpeKind::Storm,
        scheds: vec![
            Sched::Os,
            Sched::Random,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![3000.0, 4000.0, 5000.0, 5500.0, 6000.0, 6500.0, 7000.0],
        queue_fig: None,
        tail_fig: Some(("fig13a", "LR/Storm latency letter values")),
    }
}

/// Fig. 10 (+13b): VS on Storm vs OS and RANDOM.
pub fn fig10() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig10",
        title: "VS in Storm: OS vs RANDOM vs LACHESIS-QS",
        query: QueryKind::Vs,
        engine: SpeKind::Storm,
        scheds: vec![
            Sched::Os,
            Sched::Random,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![1500.0, 2000.0, 2500.0, 3000.0, 3500.0, 4000.0],
        queue_fig: None,
        tail_fig: Some(("fig13b", "VS/Storm latency letter values")),
    }
}

/// Fig. 11 (+13c): LR on Flink vs OS and RANDOM.
pub fn fig11() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig11",
        title: "LR in Flink: OS vs RANDOM vs LACHESIS-QS",
        query: QueryKind::Lr,
        engine: SpeKind::Flink,
        scheds: vec![
            Sched::Os,
            Sched::Random,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![3000.0, 4000.0, 4500.0, 5000.0, 5500.0, 6000.0],
        queue_fig: None,
        tail_fig: Some(("fig13c", "LR/Flink latency letter values")),
    }
}

/// Fig. 12 (+13d): VS on Flink vs OS and RANDOM.
pub fn fig12() -> SingleQueryExp {
    SingleQueryExp {
        fig_id: "fig12",
        title: "VS in Flink: OS vs RANDOM vs LACHESIS-QS",
        query: QueryKind::Vs,
        engine: SpeKind::Flink,
        scheds: vec![
            Sched::Os,
            Sched::Random,
            Sched::Lachesis(
                crate::schedulers::PolicyChoice::Qs,
                crate::schedulers::TranslatorChoice::Nice,
            ),
        ],
        rates: vec![1500.0, 2000.0, 2500.0, 3000.0, 3500.0],
        queue_fig: None,
        tail_fig: Some(("fig13d", "VS/Flink latency letter values")),
    }
}
