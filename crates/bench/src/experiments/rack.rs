//! **figd1** — rack-scale Lachesis: one controller node schedules SYN
//! pipelines on 8–16 heterogeneous worker nodes across a modeled network.
//!
//! This generalizes the single-server multi-SPE experiment (§6.6) to the
//! paper's actual deployment shape: queries run on *other machines* than
//! the middleware, metrics arrive over the network through a push-based
//! Graphite relay, and `nice` commands travel back the other way. The
//! rack runs on the sharded lockstep simulation ([`crate::cluster`]), so
//! results are byte-identical for any shard/thread layout — sharding is a
//! pure wall-clock optimization (measured by the `cluster_bench` binary).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    LachesisBuilder, MirrorDriver, MirrorQuery, QueueSizePolicy, RemoteNiceTranslator, Scope,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, NetTopology, RackNodeId, SimDuration};
use spe::{
    deploy, install_relay_source, EngineConfig, LogHistogram, LogicalGraph, Placement, SpeKind,
    Tuple,
};

use crate::cluster::{install_metric_relay, Cluster, ClusterMsg, ClusterShard};
use crate::harness::Measured;
use crate::report::{Figure, Series, SweepPoint};
use crate::trace::validate_cluster;
use crate::ExpOptions;

/// Everything needed to build the rack deterministically on any shard
/// thread. Plain data, `Clone + Send`.
#[derive(Debug, Clone)]
pub struct RackSpec {
    /// Rack nodes including the controller (rack node 0).
    pub nodes: usize,
    /// Kernel shards; rack node `i` runs on shard `i % shards`.
    pub shards: usize,
    /// Worker threads driving the shards (`<= 1` = inline).
    pub shard_threads: usize,
    /// Uniform link latency (also the epoch length).
    pub latency: SimDuration,
    /// SYN pipelines per worker node; pipeline 0 is fed from the
    /// controller through the fabric (the paper's remote Kafka producers).
    pub pipelines: usize,
    /// Ingress rate per pipeline, tuples/s.
    pub rate_tps: f64,
    /// Whether the controller runs Lachesis (vs. plain OS scheduling).
    pub with_lachesis: bool,
    /// Workload seed.
    pub seed: u64,
}

impl RackSpec {
    /// The figd1 rack for the given options (8 nodes quick, 16 full).
    pub fn figd1(opts: &ExpOptions, with_lachesis: bool) -> RackSpec {
        let nodes = if opts.quick { 8 } else { 16 };
        RackSpec {
            nodes,
            shards: nodes,
            shard_threads: opts.shard_threads,
            latency: SimDuration::from_millis(1),
            pipelines: if opts.quick { 2 } else { 3 },
            rate_tps: 250.0,
            with_lachesis,
            seed: 1,
        }
    }

    /// The uniform topology of this rack.
    pub fn topology(&self) -> NetTopology {
        NetTopology::uniform(self.nodes, self.latency)
    }

    /// Per-node CPU speed multiplier in percent: the rack is heterogeneous
    /// (100 / 125 / 160 / 80 cycling), modeled by scaling operator costs —
    /// a slower node spends more microseconds per tuple.
    pub fn speed_pct(&self, rack_id: RackNodeId) -> u64 {
        [100, 125, 160, 80][rack_id % 4]
    }

    /// The logical graphs deployed on worker node `rack_id`, in deployment
    /// order (= the fabric's query address space). Pipeline 0 has its
    /// sources stripped: it is fed by a controller-side relay source.
    pub fn node_graphs(&self, rack_id: RackNodeId) -> Vec<LogicalGraph> {
        assert!(rack_id >= 1, "the controller hosts no pipelines");
        let pct = self.speed_pct(rack_id);
        let base = queries::SynConfig::default();
        let cfg = queries::SynConfig {
            queries: 1,
            cost_range_us: (
                base.cost_range_us.0 * pct / 100,
                base.cost_range_us.1 * pct / 100,
            ),
            seed: self.seed,
            ..base
        };
        (0..self.pipelines)
            .map(|j| {
                let mut g =
                    queries::syn_single(rack_id * 100 + j, self.rate_tps, cfg);
                g.name = format!("n{rack_id}q{j}");
                if j == 0 {
                    // Remote-fed: the relay source on the controller
                    // produces these tuples across the fabric.
                    g.sources.clear();
                }
                g
            })
            .collect()
    }
}

/// Builds one shard of the rack: deploys the worker nodes it hosts, wires
/// metric relays, and — on the shard hosting rack node 0 — the relay
/// sources and (optionally) the Lachesis controller.
fn build_shard(spec: &RackSpec, racks: Vec<RackNodeId>) -> ClusterShard {
    let topo = spec.topology();
    let mut shard = ClusterShard::new(Kernel::new(machines::server_config()), topo);
    for rack_id in racks {
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        if rack_id == 0 {
            build_controller(spec, &mut shard, store);
        } else {
            build_worker(spec, &mut shard, rack_id, store);
        }
    }
    shard
}

fn build_worker(
    spec: &RackSpec,
    shard: &mut ClusterShard,
    rack_id: RackNodeId,
    store: Rc<RefCell<TimeSeriesStore>>,
) {
    let node = shard.kernel.add_node(&format!("rack{rack_id}"), 2);
    shard.add_rack_node(rack_id, node, Rc::clone(&store));
    let graphs = spec.node_graphs(rack_id);
    let mirrors: Vec<MirrorQuery> = graphs.iter().map(|g| MirrorQuery::new(g, false)).collect();
    let queries = graphs
        .into_iter()
        .map(|g| {
            let mut config = EngineConfig::liebre();
            config.seed = spec.seed;
            deploy(
                &mut shard.kernel,
                g,
                config,
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .expect("deploy rack pipeline")
        })
        .collect();
    shard.set_queries(rack_id, queries);
    // The worker's command address space must agree with the mirrors the
    // controller schedules against (both derive from the same graphs).
    shard.node(rack_id).applier().borrow().check_against(&mirrors);
    let outbox = shard.outbox();
    install_metric_relay(
        &mut shard.kernel,
        outbox,
        rack_id,
        0,
        store,
        SimDuration::from_secs(1),
    );
}

fn build_controller(
    spec: &RackSpec,
    shard: &mut ClusterShard,
    store: Rc<RefCell<TimeSeriesStore>>,
) {
    let node = shard.kernel.add_node("rack0", 4);
    shard.add_rack_node(0, node, Rc::clone(&store));
    // Relay sources: one per worker node, feeding its remote-fed pipeline
    // (query 0, ingress op 0) across the fabric.
    for dst in 1..spec.nodes {
        let outbox = shard.outbox();
        let mut k = 0u64;
        install_relay_source(
            &mut shard.kernel,
            &format!("feed_n{dst}"),
            spec.rate_tps,
            Box::new(move |seq, now| {
                k += 1;
                Tuple::new(now, seq.wrapping_mul(31).wrapping_add(k), vec![])
            }),
            Box::new(move |kernel, tuple| {
                outbox.send(
                    0,
                    dst,
                    kernel.now(),
                    ClusterMsg::Tuple { query: 0, op: 0, tuple },
                );
            }),
            SimDuration::from_millis(1),
        );
    }
    if !spec.with_lachesis {
        return;
    }
    // One Lachesis instance scheduling every worker node: a MirrorDriver
    // per node (topology from the shared deployment config, metrics from
    // the relayed store) and a RemoteNiceTranslator emitting commands into
    // the fabric outbox.
    let cmd_outbox = Rc::new(RefCell::new(Vec::new()));
    let mut builder = LachesisBuilder::new();
    for dst in 1..spec.nodes {
        let mirrors: Vec<MirrorQuery> = spec
            .node_graphs(dst)
            .iter()
            .map(|g| MirrorQuery::new(g, false))
            .collect();
        builder = builder
            .driver(MirrorDriver::new(
                &format!("liebre@n{dst}"),
                SpeKind::Liebre,
                mirrors,
                Rc::clone(&store),
            ))
            .policy(
                dst - 1,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                RemoteNiceTranslator::new(dst, Rc::clone(&cmd_outbox)),
            );
    }
    builder.build().start(&mut shard.kernel);
    shard.set_cmd_outbox(0, cmd_outbox);
}

/// Builds the whole rack as a [`Cluster`].
pub fn build_rack(spec: &RackSpec) -> Cluster {
    assert!(spec.nodes >= 2, "a rack needs a controller and a worker");
    assert!(spec.shards >= 1);
    let mut assignment: Vec<Vec<RackNodeId>> = vec![Vec::new(); spec.shards.min(spec.nodes)];
    for rack_id in 0..spec.nodes {
        let shard = rack_id % assignment.len();
        assignment[shard].push(rack_id);
    }
    let builders = assignment
        .into_iter()
        .map(|racks| {
            let spec = spec.clone();
            Box::new(move || build_shard(&spec, racks)) as Box<dyn FnOnce() -> ClusterShard + Send>
        })
        .collect();
    Cluster::new(spec.topology(), spec.shard_threads, builders)
}

/// Per-worker-node measurement over one rack run.
#[derive(Debug, Clone)]
pub struct NodeMeasure {
    /// Rack node id.
    pub rack_id: RackNodeId,
    /// Aggregated metrics over the node's pipelines.
    pub m: Measured,
    /// Scheduling commands applied by the node.
    pub cmds_applied: u64,
}

/// Runs the rack through warm-up + measurement and returns per-node
/// results (ascending rack id) plus the final snapshot digest.
pub fn run_rack(spec: &RackSpec, warmup: SimDuration, measure: SimDuration) -> (Vec<NodeMeasure>, u64) {
    let mut cluster = build_rack(spec);
    cluster.run_for(warmup);
    cluster.map_shards(|_| {
        Box::new(|s: &mut ClusterShard| {
            for nr in s.rack_nodes() {
                for q in nr.queries() {
                    q.reset_stats();
                }
            }
        })
    });
    cluster.run_for(measure);

    let secs = measure.as_secs_f64();
    let offered = spec.rate_tps * spec.pipelines as f64;
    let mut per_node: Vec<NodeMeasure> = cluster
        .map_shards(|_| {
            Box::new(move |s: &mut ClusterShard| {
                s.rack_nodes()
                    .iter()
                    .filter(|nr| nr.rack_id() != 0)
                    .map(|nr| {
                        let mut latency = LogHistogram::new();
                        let mut e2e = LogHistogram::new();
                        let mut ingress = 0u64;
                        let mut egress = 0u64;
                        for q in nr.queries() {
                            latency.merge(&q.latency_histogram());
                            e2e.merge(&q.e2e_histogram());
                            ingress += q.ingress_total();
                            egress += q.egress_total();
                        }
                        let p = |h: &LogHistogram, q: f64| h.quantile(q).unwrap_or(0.0);
                        NodeMeasure {
                            rack_id: nr.rack_id(),
                            m: Measured {
                                offered_tps: offered,
                                throughput_tps: ingress as f64 / secs,
                                latency_mean_s: latency.mean().unwrap_or(0.0),
                                latency_p: (
                                    p(&latency, 0.5),
                                    p(&latency, 0.99),
                                    p(&latency, 0.999),
                                ),
                                e2e_mean_s: e2e.mean().unwrap_or(0.0),
                                e2e_p: (p(&e2e, 0.5), p(&e2e, 0.99), p(&e2e, 0.999)),
                                slo_target_s: 0.0,
                                slo_miss_rate: 0.0,
                                goal: 0.0,
                                queue_samples: vec![],
                                utilization: 0.0,
                                ctx_switches_per_s: 0.0,
                                egress_tps: egress as f64 / secs,
                            },
                            cmds_applied: nr.applier().borrow().applied(),
                        }
                    })
                    .collect::<Vec<NodeMeasure>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
    per_node.sort_by_key(|n| n.rack_id);

    let stats = validate_cluster(cluster.journal(), cluster.topology())
        .expect("fabric journal replays cleanly");
    assert!(stats.tuples > 0, "fabric carried data tuples");

    let digest = cluster.snapshot().digest();
    (per_node, digest)
}

/// figd1: per-node throughput and end-to-end latency on the rack, OS vs
/// LACHESIS (one middleware instance scheduling all worker nodes).
pub fn figd1(opts: &ExpOptions) -> Vec<Figure> {
    let (warmup, measure) = if opts.quick {
        (SimDuration::from_secs(2), SimDuration::from_secs(6))
    } else {
        (SimDuration::from_secs(3), SimDuration::from_secs(10))
    };
    let mut fig = Figure::new(
        "figd1",
        "Rack-scale scheduling: SYN pipelines on heterogeneous nodes, one Lachesis for the rack",
        "rack node",
    );
    let mut series = Vec::new();
    for with_lachesis in [false, true] {
        let spec = RackSpec::figd1(opts, with_lachesis);
        let (nodes, digest) = run_rack(&spec, warmup, measure);
        let label = if with_lachesis { "LACHESIS" } else { "OS" };
        let cmds: u64 = nodes.iter().map(|n| n.cmds_applied).sum();
        // The note must not mention `shard_threads`: the artifact is
        // byte-identical for any thread count, and CI compares the bytes.
        fig.notes.push(format!(
            "{label}: rack={} shards={} lookahead={:?} snapshot_digest={digest:016x} cmds_applied={cmds}",
            spec.nodes, spec.shards, spec.latency,
        ));
        series.push(Series {
            label: label.into(),
            points: nodes
                .into_iter()
                .map(|n| SweepPoint {
                    x: n.rack_id as f64,
                    m: n.m,
                })
                .collect(),
        });
    }
    fig.series = series;
    vec![fig]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec(with_lachesis: bool) -> RackSpec {
        RackSpec {
            nodes: 3,
            shards: 3,
            shard_threads: 1,
            latency: SimDuration::from_millis(1),
            pipelines: 2,
            rate_tps: 150.0,
            with_lachesis,
            seed: 7,
        }
    }

    #[test]
    fn rack_pipelines_process_remote_and_local_feeds() {
        let spec = tiny_spec(false);
        let (nodes, _) = run_rack(
            &spec,
            SimDuration::from_secs(1),
            SimDuration::from_secs(3),
        );
        assert_eq!(nodes.len(), 2, "two worker nodes measured");
        for n in &nodes {
            // Both the locally-sourced and the fabric-fed pipeline flow:
            // ~150 t/s x 2 pipelines.
            assert!(
                n.m.throughput_tps > 200.0,
                "node {} ingests both feeds: {}",
                n.rack_id,
                n.m.throughput_tps
            );
            assert!(n.m.egress_tps > 0.0, "tuples reach the sinks");
        }
    }

    #[test]
    fn lachesis_commands_cross_the_fabric_and_apply() {
        let spec = tiny_spec(true);
        let (nodes, _) = run_rack(
            &spec,
            SimDuration::from_secs(1),
            SimDuration::from_secs(4),
        );
        let cmds: u64 = nodes.iter().map(|n| n.cmds_applied).sum();
        assert!(cmds > 0, "remote nice commands were applied");
    }

    #[test]
    fn rack_results_are_identical_for_any_layout() {
        let warmup = SimDuration::from_secs(1);
        let measure = SimDuration::from_secs(2);
        let base = tiny_spec(true);
        let (_, d1) = run_rack(&RackSpec { shards: 1, ..base.clone() }, warmup, measure);
        let (_, d3) = run_rack(&RackSpec { shards: 3, ..base.clone() }, warmup, measure);
        let (_, d3t) = run_rack(
            &RackSpec { shards: 3, shard_threads: 3, ..base },
            warmup,
            measure,
        );
        assert_eq!(d1, d3, "one merged kernel == three shards");
        assert_eq!(d3, d3t, "threading the shards changes nothing");
    }
}
