//! Scale-out experiment (§6.5, Fig. 17): LR with operator parallelism
//! 1/2/4 spread over an equal number of Odroids, each running an
//! *independent* Lachesis instance (no cross-node coordination).

use std::rc::Rc;

use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
use simos::{machines, Kernel, NodeId};
use spe::{deploy, EngineConfig, Placement, SpeKind};

use crate::harness::{average_runs, new_store, run_trial, GoalKind, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::ExpOptions;

fn run_cell(
    engine: SpeKind,
    parallelism: usize,
    with_lachesis: bool,
    rate: f64,
    seed: u64,
    cfg: &RunConfig,
) -> crate::harness::Measured {
    let mut kernel = Kernel::new(machines::odroid_config());
    let nodes: Vec<NodeId> = (0..parallelism)
        .map(|i| machines::add_odroid(&mut kernel, &format!("odroid{i}")))
        .collect();
    let store = new_store();
    let config = match engine {
        SpeKind::Flink => EngineConfig::flink(),
        _ => EngineConfig::storm(),
    };
    let graph = queries::lr_with_parallelism(rate, seed, parallelism);
    let query = deploy(
        &mut kernel,
        graph,
        config,
        &Placement::spread(nodes.clone()),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");
    if with_lachesis {
        // One independent Lachesis instance per node (§6.5): each sees the
        // whole SPE's metrics but only schedules its own node's operators.
        for &node in &nodes {
            LachesisBuilder::new()
                .driver(StoreDriver::new(
                    engine,
                    vec![query.clone()],
                    Rc::clone(&store),
                ))
                .policy(
                    0,
                    Scope::Node(node),
                    QueueSizePolicy::default(),
                    NiceTranslator::new(),
                )
                .build()
                .start(&mut kernel);
        }
    }
    let (m, _) = run_trial(&mut kernel, &nodes, &[query], cfg);
    m
}

/// Fig. 17: LR scale-out on Storm and Flink, parallelism 1/2/4.
pub fn fig17(opts: &ExpOptions) -> Vec<Figure> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let rates: Vec<f64> = if opts.quick {
        vec![4_000.0, 11_000.0, 20_000.0]
    } else {
        vec![2_000.0, 4_000.0, 8_000.0, 11_000.0, 16_000.0, 20_000.0, 25_000.0]
    };
    let mut figs = Vec::new();
    for engine in [SpeKind::Storm, SpeKind::Flink] {
        let mut fig = Figure::new(
            if engine == SpeKind::Storm {
                "fig17a"
            } else {
                "fig17b"
            },
            &format!("LR scale-out in {:?}: 1/2/4 Odroids", engine),
            "rate (t/s)",
        );
        for parallelism in [1usize, 2, 4] {
            for with_lachesis in [false, true] {
                // Independent (rate, rep) trials: pool them, fold in order.
                let trials: Vec<(f64, u64)> = rates
                    .iter()
                    .flat_map(|&rate| (0..opts.reps as u64).map(move |rep| (rate, rep)))
                    .collect();
                let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, rep)| {
                    run_cell(engine, parallelism, with_lachesis, rate, 1 + rep, &cfg)
                })
                .into_iter();
                let points = rates
                    .iter()
                    .map(|&rate| {
                        let runs: Vec<_> = (0..opts.reps)
                            .map(|_| results.next().expect("one result per trial"))
                            .collect();
                        let mut m = average_runs(runs);
                        m.queue_samples.clear();
                        SweepPoint { x: rate, m }
                    })
                    .collect();
                fig.series.push(Series {
                    label: format!(
                        "{}x{}",
                        if with_lachesis { "LACHESIS-QS" } else { "OS" },
                        parallelism
                    ),
                    points,
                });
            }
        }
        fig.notes
            .push("independent Lachesis instance per node, no coordination (§6.5)".into());
        figs.push(fig);
    }
    figs
}

/// Fig. 1 (the paper's motivating example): LR on one Odroid, OS vs
/// Lachesis-QS — a subset of Fig. 9.
pub fn fig1(opts: &ExpOptions) -> Vec<Figure> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let rates: Vec<f64> = if opts.quick {
        vec![3_000.0, 5_000.0, 6_000.0]
    } else {
        vec![2_000.0, 3_000.0, 4_000.0, 5_000.0, 5_500.0, 6_000.0, 6_500.0]
    };
    let mut fig = Figure::new(
        "fig1",
        "Custom scheduling benefits for LR on an edge device (intro)",
        "rate (t/s)",
    );
    for with_lachesis in [false, true] {
        let trials: Vec<(f64, u64)> = rates
            .iter()
            .flat_map(|&rate| (0..opts.reps as u64).map(move |rep| (rate, rep)))
            .collect();
        let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, rep)| {
            run_cell(SpeKind::Storm, 1, with_lachesis, rate, 1 + rep, &cfg)
        })
        .into_iter();
        let points = rates
            .iter()
            .map(|&rate| {
                let runs: Vec<_> = (0..opts.reps)
                    .map(|_| results.next().expect("one result per trial"))
                    .collect();
                let mut m = average_runs(runs);
                m.queue_samples.clear();
                SweepPoint { x: rate, m }
            })
            .collect();
        fig.series.push(Series {
            label: if with_lachesis {
                "CUSTOM (LACHESIS-QS)".into()
            } else {
                "OS".into()
            },
            points,
        });
    }
    vec![fig]
}
