//! Multi-query experiments on Liebre (§6.4): SYN workload under OS, Haren
//! and Lachesis for three policies (Fig. 14), the Haren scheduling-period
//! ablation (Fig. 15) and the blocking-operator study (Fig. 16).

use simos::SimDuration;
use spe::{BlockingConfig, SpeKind};

use crate::harness::{average_runs, GoalKind, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::schedulers::{run_point, PointSpec, PolicyChoice, Sched, TranslatorChoice};
use crate::ExpOptions;

/// Total SYN offered-rate sweep (tuples/s over all 20 pipelines).
const SYN_RATES: [f64; 6] = [750.0, 1000.0, 1250.0, 1500.0, 1750.0, 2000.0];

fn syn_graph(rate: f64, seed: u64) -> spe::LogicalGraph {
    queries::syn(
        rate,
        queries::SynConfig {
            seed: 42 + seed, // workload structure varies with the rep seed
            ..queries::SynConfig::default()
        },
    )
}

fn syn_downstream() -> Vec<Vec<usize>> {
    queries::downstream_indices(&syn_graph(1.0, 0))
}

fn goal_for(policy: PolicyChoice) -> GoalKind {
    match policy {
        PolicyChoice::Qs => GoalKind::QueueSizeVariance,
        PolicyChoice::Fcfs => GoalKind::MaxHeadAge,
        PolicyChoice::Hr => GoalKind::AvgLatency,
    }
}

fn run_series(
    sched: &Sched,
    goal: GoalKind,
    rates: &[f64],
    opts: &ExpOptions,
    blocking: Option<BlockingConfig>,
) -> Series {
    let cfg = if opts.quick {
        RunConfig::quick(goal)
    } else {
        RunConfig::full(goal)
    };
    // (rate, rep) trials are independent: run them on the worker pool and
    // fold back in input order (identical output for any `--jobs`).
    let trials: Vec<(f64, u64)> = rates
        .iter()
        .flat_map(|&rate| (0..opts.reps as u64).map(move |rep| (rate, rep)))
        .collect();
    let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, rep)| {
        let (m, _) = run_point(PointSpec {
            graph: Box::new(syn_graph),
            engine: SpeKind::Liebre,
            sched: sched.clone(),
            rate,
            seed: 1 + rep,
            cfg,
            blocking,
            downstream: syn_downstream(),
        });
        m
    })
    .into_iter();
    let points = rates
        .iter()
        .map(|&rate| {
            let runs: Vec<_> = (0..opts.reps)
                .map(|_| results.next().expect("one result per trial"))
                .collect();
            let mut m = average_runs(runs);
            m.queue_samples.clear();
            SweepPoint { x: rate, m }
        })
        .collect();
    Series {
        label: sched.label(),
        points,
    }
}

fn thin(rates: &[f64], quick: bool) -> Vec<f64> {
    if quick {
        vec![rates[0], rates[rates.len() / 2], rates[rates.len() - 1]]
    } else {
        rates.to_vec()
    }
}

/// Fig. 14: SYN under OS, Haren (50 ms) and Lachesis (cpu.shares) for the
/// QS, FCFS and HR policies.
pub fn fig14(opts: &ExpOptions) -> Vec<Figure> {
    let rates = thin(&SYN_RATES, opts.quick);
    let mut fig = Figure::new(
        "fig14",
        "Multi-query scheduling of SYN in Liebre (20 queries, 100 operators)",
        "total rate (t/s)",
    );
    let haren_period = SimDuration::from_millis(50);
    for policy in [PolicyChoice::Qs, PolicyChoice::Fcfs, PolicyChoice::Hr] {
        let goal = goal_for(policy);
        fig.series.push(run_series(
            &Sched::Os,
            goal,
            &rates,
            opts,
            None,
        ));
        let os = fig.series.last_mut().unwrap();
        os.label = format!("OS[goal={}]", policy.label());
        fig.series.push(run_series(
            &Sched::Haren(policy, haren_period),
            goal,
            &rates,
            opts,
            None,
        ));
        fig.series.push(run_series(
            &Sched::Lachesis(policy, TranslatorChoice::Shares),
            goal,
            &rates,
            opts,
            None,
        ));
    }
    fig.notes.push(
        "Lachesis uses cpu.shares with one cgroup per operator (100 ops > 40 nice levels)".into(),
    );
    vec![fig]
}

/// Fig. 15: the effect of Haren's scheduling granularity — 50 ms vs the
/// 1000 ms Lachesis is limited to by Graphite.
pub fn fig15(opts: &ExpOptions) -> Vec<Figure> {
    let rates = thin(&SYN_RATES, opts.quick);
    let policy = PolicyChoice::Fcfs;
    let goal = goal_for(policy);
    let mut fig = Figure::new(
        "fig15",
        "Scheduling granularity: HAREN-50 vs HAREN-1000 vs LACHESIS (FCFS)",
        "total rate (t/s)",
    );
    for sched in [
        Sched::Haren(policy, SimDuration::from_millis(50)),
        Sched::Haren(policy, SimDuration::from_millis(1000)),
        Sched::Lachesis(policy, TranslatorChoice::Shares),
        Sched::Os,
    ] {
        fig.series.push(run_series(&sched, goal, &rates, opts, None));
    }
    vec![fig]
}

/// Fig. 16: blocking operators — 10% of operators block for up to 200 ms
/// with probability 0.1% per tuple; UL-SS workers stall, Lachesis doesn't.
pub fn fig16(opts: &ExpOptions) -> Vec<Figure> {
    let rates = thin(&SYN_RATES, opts.quick);
    let policy = PolicyChoice::Fcfs;
    let goal = goal_for(policy);
    // The paper injects p=0.001 per tuple; a real blocked JVM thread also
    // causes lock/GC convoying the simulator does not model, so the
    // injection frequency is scaled x10 to yield a comparable fraction of
    // stalled worker time (see EXPERIMENTS.md).
    let blocking = Some(BlockingConfig {
        fraction: 0.1,
        probability: 0.01,
        max_duration: SimDuration::from_millis(200),
    });
    let mut fig = Figure::new(
        "fig16",
        "SYN with blocking I/O (FCFS): Lachesis vs Haren vs OS",
        "total rate (t/s)",
    );
    for sched in [
        Sched::Os,
        Sched::Haren(policy, SimDuration::from_millis(50)),
        Sched::Lachesis(policy, TranslatorChoice::Shares),
    ] {
        fig.series
            .push(run_series(&sched, goal, &rates, opts, blocking));
    }
    fig.notes
        .push("10% of operators block ≤200ms with p=0.001 per tuple (§6.4)".into());
    vec![fig]
}
