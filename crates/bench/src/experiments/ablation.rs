//! Ablations of Lachesis' own design choices (DESIGN.md §6): the
//! scheduling period (how much the Graphite-imposed 1 s costs) and the
//! translator mechanism (nice vs per-operator cpu.shares vs the §8 quota
//! extension) on the VS/Storm workload near saturation.

use std::rc::Rc;

use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, SpeKind};

use crate::harness::{average_runs, new_store, run_trial, GoalKind, Measured, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::schedulers::{attach_lachesis_with_period, PolicyChoice, TranslatorChoice};
use crate::ExpOptions;

fn run_cell(
    rate: f64,
    seed: u64,
    period: SimDuration,
    translator: TranslatorChoice,
    cfg: &RunConfig,
) -> Measured {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = new_store();
    let query = deploy(
        &mut kernel,
        queries::vs(rate, seed),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");
    attach_lachesis_with_period(
        &mut kernel,
        SpeKind::Storm,
        vec![query.clone()],
        store,
        PolicyChoice::Qs,
        translator,
        period,
    );
    let (m, _) = run_trial(&mut kernel, &[node], &[query], cfg);
    m
}

fn sweep(
    label: &str,
    rates: &[f64],
    opts: &ExpOptions,
    period: SimDuration,
    translator: TranslatorChoice,
    cfg: &RunConfig,
) -> Series {
    // Independent (rate, rep) trials: pool them, fold back in input order.
    let trials: Vec<(f64, u64)> = rates
        .iter()
        .flat_map(|&rate| (0..opts.reps as u64).map(move |rep| (rate, rep)))
        .collect();
    let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, rep)| {
        run_cell(rate, 1 + rep, period, translator, cfg)
    })
    .into_iter();
    let points = rates
        .iter()
        .map(|&rate| {
            let runs: Vec<_> = (0..opts.reps)
                .map(|_| results.next().expect("one result per trial"))
                .collect();
            let mut m = average_runs(runs);
            m.queue_samples.clear();
            SweepPoint { x: rate, m }
        })
        .collect();
    Series {
        label: label.into(),
        points,
    }
}

/// The two ablation figures.
pub fn ablation(opts: &ExpOptions) -> Vec<Figure> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let rates: Vec<f64> = if opts.quick {
        vec![2_000.0, 2_600.0]
    } else {
        vec![1_500.0, 2_000.0, 2_300.0, 2_600.0, 2_900.0]
    };

    // Ablation 1: translator mechanism at the paper's 1 s period.
    let mut translators = Figure::new(
        "ablation_translator",
        "Lachesis-QS on VS/Storm: nice vs per-op cpu.shares vs CPU quotas",
        "rate (t/s)",
    );
    for (label, t) in [
        ("nice", TranslatorChoice::Nice),
        ("cpu.shares", TranslatorChoice::Shares),
        ("cpu.quota", TranslatorChoice::Quota),
    ] {
        translators.series.push(sweep(
            label,
            &rates,
            opts,
            SimDuration::from_secs(1),
            t,
            &cfg,
        ));
    }
    translators.notes.push(
        "quotas are hard caps: expect them to waste capacity vs the work-conserving mechanisms"
            .into(),
    );

    // Ablation 2: scheduling period with the nice translator.
    let mut periods = Figure::new(
        "ablation_period",
        "Lachesis-QS on VS/Storm: scheduling period 250ms vs 500ms vs 1s vs 2s",
        "rate (t/s)",
    );
    for ms in [250u64, 500, 1_000, 2_000] {
        periods.series.push(sweep(
            &format!("{ms}ms"),
            &rates,
            opts,
            SimDuration::from_millis(ms),
            TranslatorChoice::Nice,
            &cfg,
        ));
    }
    periods.notes.push(
        "the paper's 1s period is a Graphite limitation; finer periods need fresher metrics"
            .into(),
    );
    vec![translators, periods]
}
