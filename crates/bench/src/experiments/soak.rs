//! Long-horizon multi-tenant production soak (`figf1`, robustness
//! extension, not in the paper): a rack of workers runs hundreds of
//! queries from dozens of tenants arriving and departing on a
//! multi-simulated-day diurnal calendar — flash crowds, walk-in tenants
//! retrying admission, a whale probe that can never fit — with *every*
//! chaos layer enabled at once:
//!
//! * **CPU hotplug** shrinks each worker during the first morning peak,
//!   squeezing the admission budget exactly when walk-ins arrive.
//! * **Operator crashes** with probabilistic restart failures hit one
//!   tenant per worker (seeded from the *rack node id*, never the shard
//!   index, so any shard layout replays the identical fault history).
//! * **Metric faults** (NaN bursts, dropouts) corrupt what the
//!   controller's mirrors read, with the starvation watchdog riding the
//!   control loop.
//! * **Network faults** from a seeded [`NetFaultPlan`]: command drops,
//!   metric latency spikes, and a full controller↔worker partition on
//!   the last day.
//!
//! Per-tenant cgroup CPU quotas cap the flash-crowd tenant so its burst
//! cannot starve neighbours, and every arrival passes the
//! [`AdmissionController`].
//!
//! The run reports per-tenant SLO attainment, isolation violations and a
//! Jain fairness index, and machine-checks the partition story against a
//! fault-free reference run: the partitioned worker must fall back to CFS
//! defaults within the lease-detection bound (probed mid-partition), the
//! healed cluster must reconverge to the **exact** unpartitioned
//! schedule (the scheduling policy is static, so the reference schedule
//! is a fixed point), and no runnable thread may starve — validated by
//! replaying the kernel trace. Artifacts are byte-identical for any
//! `--jobs`, `--shard-threads`, or shard count.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    install_lease_guard, AdmissionConfig, AdmissionController, AdmissionDecision, LachesisBuilder,
    MirrorDriver, MirrorQuery, Policy, PolicyView, RemoteNiceTranslator, Scope,
    SinglePrioritySchedule, SloClass, WatchdogConfig,
};
use lachesis_metrics::{FaultPlan, MetricName, TimeSeriesStore};
use simos::{
    machines, mix_seed, Kernel, NetFaultPlan, NetTopology, RackNodeId, SimDuration, SimTime,
    TraceEvent, TraceTrack, DEFAULT_CPU_SHARES,
};
use spe::{
    deploy, install_chaos, Consume, CostModel, EngineConfig, LogHistogram, LogicalGraph,
    Partitioning, PassThrough, Placement, RestartPolicy, Role, RunningQuery, SpeKind, Tuple,
};

use crate::cluster::{install_metric_relay, Cluster, ClusterShard};
use crate::harness::Measured;
use crate::report::{Figure, Series, SweepPoint};
use crate::trace::TraceDump;
use crate::ExpOptions;

/// Diurnal rate multipliers at day eighths 0/2/4/6: trough, shoulder,
/// peak, evening.
const DIURNAL: [(u64, f64); 4] = [(0, 0.4), (2, 1.0), (4, 1.4), (6, 0.7)];

/// Flash-crowd multiplier on the premium tenant during the last peak.
const FLASH: f64 = 2.2;

/// Per-class end-to-end p99 target, seconds (same ladder as `figc3`).
fn slo_target_s(class: SloClass) -> f64 {
    match class {
        SloClass::Premium => 2.0,
        SloClass::Standard => 4.0,
        SloClass::BestEffort => 10.0,
    }
}

/// Tenant roster per worker: 0 is the premium resident (flash-crowd
/// victim), 1 the standard resident (crash-chaos victim), 2 the
/// best-effort daily commuter, and every index ≥ 3 a walk-in.
fn class_of(t: usize) -> SloClass {
    match t {
        0 => SloClass::Premium,
        1 => SloClass::Standard,
        2 => SloClass::BestEffort,
        w if w % 2 == 1 => SloClass::Standard,
        _ => SloClass::BestEffort,
    }
}

fn base_rate(t: usize) -> f64 {
    match t {
        0 => 500.0,
        1 | 2 => 350.0,
        _ => 600.0,
    }
}

/// Shape of one soak run. `net_faults` is the only knob the reference
/// run flips off; everything else (crashes, hotplug, metric faults,
/// calendar) is identical in both runs.
#[derive(Debug, Clone, Copy)]
struct SoakSpec {
    /// Rack nodes including controller node 0.
    nodes: usize,
    shards: usize,
    shard_threads: usize,
    worker_cpus: usize,
    tenants_per_node: usize,
    queries_per_tenant: usize,
    days: u64,
    day: SimDuration,
    lease: SimDuration,
    latency: SimDuration,
    seed: u64,
    net_faults: bool,
    ring: Option<usize>,
}

impl SoakSpec {
    fn quick(opts: &ExpOptions) -> Self {
        SoakSpec {
            nodes: 4,
            shards: 4,
            shard_threads: opts.shard_threads,
            worker_cpus: 2,
            tenants_per_node: 4,
            queries_per_tenant: 2,
            days: 2,
            day: SimDuration::from_secs(4),
            lease: SimDuration::from_secs(1),
            latency: SimDuration::from_millis(1),
            seed: 1,
            net_faults: true,
            ring: None,
        }
    }

    fn full(opts: &ExpOptions) -> Self {
        SoakSpec {
            nodes: 9,
            shards: 9,
            shard_threads: opts.shard_threads,
            worker_cpus: 4,
            tenants_per_node: 8,
            queries_per_tenant: 4,
            days: 3,
            day: SimDuration::from_secs(12),
            lease: SimDuration::from_secs(2),
            latency: SimDuration::from_millis(1),
            seed: 1,
            net_faults: true,
            ring: None,
        }
    }

    /// Offset of eighth `e` of day `d` from the run start.
    fn off(&self, d: u64, e: u64) -> SimDuration {
        SimDuration::from_nanos(self.day.as_nanos() * d + self.day.as_nanos() / 8 * e)
    }

    fn t(&self, d: u64, e: u64) -> SimTime {
        SimTime::ZERO + self.off(d, e)
    }

    fn last_day(&self) -> u64 {
        self.days - 1
    }

    /// Run end: a quarter day past the last day, draining at the trough.
    fn end(&self) -> SimDuration {
        self.off(self.days, 2)
    }

    fn half_lease(&self) -> SimDuration {
        SimDuration::from_nanos(self.lease.as_nanos() / 2)
    }

    /// The controller↔worker-1 partition window: three lease intervals
    /// starting early on the last day.
    fn partition_from(&self) -> SimTime {
        self.t(self.last_day(), 1)
    }

    fn partition_until(&self) -> SimTime {
        self.partition_from() + SimDuration::from_nanos(self.lease.as_nanos() * 3)
    }

    /// Mid-partition probe: two lease intervals in (expiry fires after
    /// one; the guard probes every half interval).
    fn probe_at(&self) -> SimTime {
        self.partition_from() + SimDuration::from_nanos(self.lease.as_nanos() * 2)
    }

    fn workers(&self) -> usize {
        self.nodes - 1
    }
}

/// One worker pipeline: src → hot → sink, 340 µs of work per tuple.
fn pipeline(name: &str, rate: f64) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
        Box::new(PassThrough)
    });
    let hot = b.op("hot", Role::Transform, CostModel::micros(300), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });
    b.edge(src, hot, Partitioning::Forward);
    b.edge(hot, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

fn tenant_query_graph(rack_id: RackNodeId, t: usize, j: usize) -> LogicalGraph {
    pipeline(&format!("n{rack_id}t{t}q{j}"), base_rate(t))
}

/// Admission demand proxy for a whole tenant: one pipeline at the summed
/// rate estimates the same cores as `queries_per_tenant` pipelines.
fn admission_graph(name: &str, rate: f64, qpt: usize) -> LogicalGraph {
    pipeline(name, rate * qpt as f64)
}

/// Metric-independent policy: priority = operator depth (plus a query
/// tiebreak). Its fixed point does not move with tuple counts, so the
/// healed cluster must land on the *exact* reference schedule.
struct TierPolicy {
    period: SimDuration,
}

impl Policy for TierPolicy {
    fn name(&self) -> &str {
        "soak-static"
    }
    fn period(&self) -> SimDuration {
        self.period
    }
    fn required_metrics(&self) -> Vec<MetricName> {
        Vec::new()
    }
    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| (op, (op.op + 1) as f64 + 0.1 * op.query as f64))
            .collect()
    }
}

/// Metric corruption the controller's mirror of worker `dst` sees:
/// a NaN burst on day 0 and a dropout window on the last day. Seeded
/// from the worker's rack node id.
fn metric_plan(spec: &SoakSpec, dst: RackNodeId) -> FaultPlan {
    let last = spec.last_day();
    FaultPlan::new(mix_seed(mix_seed(spec.seed, 0xF1), dst as u64))
        .nan_values(spec.t(0, 6), spec.t(0, 7), 0.5)
        .metric_dropout(spec.t(last, 5), spec.t(last, 6), 0.3)
}

/// Crash chaos on each worker: tenant 1's first pipeline loses its hot
/// operator at the day-0 peak, with restart failures for an eighth of a
/// day. Seeded from the rack node id (never the shard index), so any
/// shard layout replays the identical fault history.
fn crash_plan(spec: &SoakSpec, rack_id: RackNodeId) -> FaultPlan {
    FaultPlan::new(mix_seed(spec.seed, rack_id as u64))
        .operator_crash("hot#0", spec.t(0, 5))
        .restart_failure(Some("hot#0"), spec.t(0, 5), spec.t(0, 6), 0.5)
}

/// The seeded network fault calendar: command drops and metric latency
/// spikes around the day-0 peak, a metric drop window on the last day,
/// and the full controller↔worker-1 partition.
fn net_plan(spec: &SoakSpec) -> NetFaultPlan {
    let last_worker = spec.nodes - 1;
    let last = spec.last_day();
    NetFaultPlan::new(spec.seed)
        .partition(
            spec.partition_from(),
            spec.partition_until(),
            vec![0],
            vec![1],
        )
        .latency_spike(
            spec.t(0, 5),
            spec.t(0, 7),
            last_worker,
            0,
            0.5,
            SimDuration::from_millis(2),
        )
        .drop_link(spec.t(0, 5), spec.t(0, 7), 0, last_worker, 0.1)
        .drop_link(spec.t(last, 5), spec.t(last, 6), last_worker, 0, 0.15)
}

/// Emits a supervisor-track instant marking a calendar event, so the
/// soak timeline is reconstructible from the trace alone.
fn mark(kernel: &mut Kernel, name: &'static str, args: Vec<(&'static str, f64)>) {
    if let Some(t) = kernel.trace_sink() {
        let now = kernel.now();
        t.borrow_mut().push(
            now,
            TraceEvent::Instant {
                track: TraceTrack::Supervisor,
                name,
                args,
            },
        );
    }
}

fn apply_rate(queries: &[RunningQuery], rate: f64) {
    for q in queries {
        for s in q.sources() {
            s.borrow_mut().set_rate(rate);
        }
    }
}

fn tenant_rate(t: usize, mult: f64, flash: f64) -> f64 {
    base_rate(t) * mult * if t == 0 { flash } else { 1.0 }
}

fn build_controller(spec: &SoakSpec, shard: &mut ClusterShard, store: Rc<RefCell<TimeSeriesStore>>) {
    let node = shard.kernel.add_node("rack0", 4);
    shard.add_rack_node(0, node, Rc::clone(&store));
    let cmd_outbox = Rc::new(RefCell::new(Vec::new()));
    let mut builder = LachesisBuilder::new();
    for dst in 1..spec.nodes {
        let mirrors: Vec<MirrorQuery> = (0..spec.tenants_per_node)
            .flat_map(|t| (0..spec.queries_per_tenant).map(move |j| (t, j)))
            .map(|(t, j)| MirrorQuery::new(&tenant_query_graph(dst, t, j), false))
            .collect();
        let faults = Rc::new(RefCell::new(metric_plan(spec, dst)));
        builder = builder
            .driver(
                MirrorDriver::new(
                    &format!("storm@n{dst}"),
                    SpeKind::Storm,
                    mirrors,
                    Rc::clone(&store),
                )
                .with_faults(faults)
                .with_fence(spec.lease),
            )
            .policy(
                dst - 1,
                Scope::AllQueries,
                TierPolicy {
                    period: spec.half_lease(),
                },
                RemoteNiceTranslator::new(dst, Rc::clone(&cmd_outbox)),
            );
    }
    builder
        .watchdog(WatchdogConfig::default())
        .build()
        .start(&mut shard.kernel);
    shard.set_cmd_outbox(0, cmd_outbox);
}

fn build_worker(
    spec: &SoakSpec,
    shard: &mut ClusterShard,
    rack_id: RackNodeId,
    store: Rc<RefCell<TimeSeriesStore>>,
) {
    let spec = *spec;
    let qpt = spec.queries_per_tenant;
    let node = shard
        .kernel
        .add_node(&format!("rack{rack_id}"), spec.worker_cpus);
    shard.add_rack_node(rack_id, node, Rc::clone(&store));

    // Every tenant's pipelines are deployed up front so the controller's
    // static mirrors and the command (query, op) addressing stay valid
    // for the whole run; arrival/departure toggles the source rates, and
    // only admitted tenants ever emit a tuple.
    let mut queries = Vec::new();
    for t in 0..spec.tenants_per_node {
        for j in 0..qpt {
            let q = deploy(
                &mut shard.kernel,
                tenant_query_graph(rack_id, t, j),
                EngineConfig::storm(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
            .expect("deploy soak pipeline");
            queries.push(q);
        }
    }

    // Per-tenant cgroups with a CPU quota cap: 30 ms per pipeline per
    // 100 ms period. Generous at steady state, binding during the flash
    // crowd — that cap is the isolation story under test.
    let root = shard.kernel.node_root(node).expect("node root");
    for t in 0..spec.tenants_per_node {
        let cg = shard
            .kernel
            .create_cgroup(root, &format!("tenant{t}"), DEFAULT_CPU_SHARES)
            .expect("tenant cgroup");
        shard
            .kernel
            .set_cpu_quota(
                cg,
                Some((
                    SimDuration::from_millis(30 * qpt as u64),
                    SimDuration::from_millis(100),
                )),
            )
            .expect("tenant quota");
        for q in &queries[t * qpt..(t + 1) * qpt] {
            for i in 0..q.op_count() {
                if let Some(tid) = q.cell(i).thread() {
                    shard
                        .kernel
                        .move_to_cgroup(tid, cg)
                        .expect("move into tenant cgroup");
                }
            }
        }
    }

    // Crash chaos on tenant 1's first pipeline, seeded by rack node id.
    let chaos = Rc::new(RefCell::new(crash_plan(&spec, rack_id)));
    install_chaos(
        &mut shard.kernel,
        &queries[qpt],
        &chaos,
        RestartPolicy::default(),
    );

    // Hotplug: one CPU leaves during the day-0 peak and returns in the
    // evening, shrinking the admission budget while walk-ins arrive.
    shard
        .kernel
        .schedule_cpu_offline(spec.off(0, 4), node, spec.worker_cpus - 1);
    shard
        .kernel
        .schedule_cpu_online(spec.off(0, 6), node, spec.worker_cpus - 1);

    let admission = Rc::new(RefCell::new(AdmissionController::new(
        AdmissionConfig::default(),
    )));
    let active: Rc<RefCell<Vec<bool>>> = Rc::new(RefCell::new(vec![false; spec.tenants_per_node]));
    let mult: Rc<RefCell<f64>> = Rc::new(RefCell::new(DIURNAL[0].1));
    let flash: Rc<RefCell<f64>> = Rc::new(RefCell::new(1.0));
    let tenant_queries: Rc<Vec<Vec<RunningQuery>>> = Rc::new(
        (0..spec.tenants_per_node)
            .map(|t| queries[t * qpt..(t + 1) * qpt].to_vec())
            .collect(),
    );

    // Tenant 0 (premium) is resident from the start.
    {
        let name = format!("n{rack_id}t0");
        let g = admission_graph(&name, base_rate(0), qpt);
        let d = admission
            .borrow_mut()
            .decide(&mut shard.kernel, &name, &g, &[node]);
        assert_eq!(d, AdmissionDecision::Admit, "empty node admits the resident");
        active.borrow_mut()[0] = true;
        apply_rate(&tenant_queries[0], tenant_rate(0, *mult.borrow(), 1.0));
    }
    for t in 1..spec.tenants_per_node {
        apply_rate(&tenant_queries[t], 0.0);
    }

    // Diurnal rate modulation for every active tenant.
    for d in 0..=spec.days {
        for (e, m) in DIURNAL {
            let off = spec.off(d, e);
            if (d == 0 && e == 0) || off >= spec.end() {
                continue;
            }
            let active = Rc::clone(&active);
            let mult = Rc::clone(&mult);
            let flash = Rc::clone(&flash);
            let tq = Rc::clone(&tenant_queries);
            shard.kernel.schedule_once(off, move |k| {
                *mult.borrow_mut() = m;
                for (t, qs) in tq.iter().enumerate() {
                    if active.borrow()[t] {
                        apply_rate(qs, tenant_rate(t, m, *flash.borrow()));
                    }
                }
                mark(k, "diurnal", vec![("day", d as f64), ("mult", m)]);
            });
        }
    }

    // Tenant 1 (standard) arrives at the day-0 shoulder.
    {
        let admission = Rc::clone(&admission);
        let active = Rc::clone(&active);
        let mult = Rc::clone(&mult);
        let tq = Rc::clone(&tenant_queries);
        let name = format!("n{rack_id}t1");
        shard
            .kernel
            .schedule_once(spec.off(0, 2) + SimDuration::from_millis(1), move |k| {
                let g = admission_graph(&name, base_rate(1), qpt);
                if admission.borrow_mut().decide(k, &name, &g, &[node])
                    == AdmissionDecision::Admit
                {
                    active.borrow_mut()[1] = true;
                    apply_rate(&tq[1], tenant_rate(1, *mult.borrow(), 1.0));
                }
            });
    }

    // Tenant 2 (best effort) commutes: arrives at each day's peak,
    // departs in the evening, releasing its admission demand.
    for d in 0..spec.days {
        {
            let admission = Rc::clone(&admission);
            let active = Rc::clone(&active);
            let mult = Rc::clone(&mult);
            let tq = Rc::clone(&tenant_queries);
            let name = format!("n{rack_id}t2");
            shard
                .kernel
                .schedule_once(spec.off(d, 4) + SimDuration::from_millis(1), move |k| {
                    let g = admission_graph(&name, base_rate(2), qpt);
                    if admission.borrow_mut().decide(k, &name, &g, &[node])
                        == AdmissionDecision::Admit
                    {
                        active.borrow_mut()[2] = true;
                        apply_rate(&tq[2], tenant_rate(2, *mult.borrow(), 1.0));
                    }
                });
        }
        {
            let admission = Rc::clone(&admission);
            let active = Rc::clone(&active);
            let tq = Rc::clone(&tenant_queries);
            let name = format!("n{rack_id}t2");
            shard.kernel.schedule_once(spec.off(d, 7), move |k| {
                active.borrow_mut()[2] = false;
                apply_rate(&tq[2], 0.0);
                admission.borrow_mut().depart(&name);
                mark(k, "depart", vec![("tenant", 2.0), ("day", d as f64)]);
            });
        }
    }

    // Walk-ins: each arrives at some day's peak; a queued walk-in
    // retries at every following day's trough until admitted.
    for w in 3..spec.tenants_per_node {
        let d0 = (w as u64 - 3) % spec.days;
        let jitter = SimDuration::from_millis(2 + w as u64);
        let mut attempts = vec![spec.off(d0, 4) + jitter];
        for rd in d0 + 1..=spec.days {
            let off = spec.off(rd, 0) + jitter;
            if off < spec.end() {
                attempts.push(off);
            }
        }
        for at in attempts {
            let admission = Rc::clone(&admission);
            let active = Rc::clone(&active);
            let mult = Rc::clone(&mult);
            let tq = Rc::clone(&tenant_queries);
            let name = format!("n{rack_id}t{w}");
            shard.kernel.schedule_once(at, move |k| {
                if active.borrow()[w] {
                    return;
                }
                let g = admission_graph(&name, base_rate(w), qpt);
                if admission.borrow_mut().decide(k, &name, &g, &[node])
                    == AdmissionDecision::Admit
                {
                    active.borrow_mut()[w] = true;
                    apply_rate(&tq[w], tenant_rate(w, *mult.borrow(), 1.0));
                }
            });
        }
    }

    // Whale probe mid-peak: demand exceeds any budget, always rejected.
    {
        let admission = Rc::clone(&admission);
        let name = format!("n{rack_id}whale");
        shard
            .kernel
            .schedule_once(spec.off(0, 5) + SimDuration::from_millis(1), move |k| {
                let g = admission_graph(&name, 3000.0, qpt);
                if admission.borrow_mut().decide(k, &name, &g, &[node])
                    == AdmissionDecision::Admit
                {
                    admission.borrow_mut().depart(&name);
                }
            });
    }

    // Flash crowd on the premium tenant during the last day's peak; its
    // cgroup quota is what keeps the burst from starving neighbours.
    {
        let last = spec.last_day();
        let flash_on = Rc::clone(&flash);
        let mult_on = Rc::clone(&mult);
        let tq_on = Rc::clone(&tenant_queries);
        shard
            .kernel
            .schedule_once(spec.off(last, 4) + SimDuration::from_millis(5), move |k| {
                *flash_on.borrow_mut() = FLASH;
                apply_rate(&tq_on[0], tenant_rate(0, *mult_on.borrow(), FLASH));
                mark(k, "flash_crowd", vec![("tenant", 0.0), ("x", FLASH)]);
            });
        let flash_off = Rc::clone(&flash);
        let mult_off = Rc::clone(&mult);
        let tq_off = Rc::clone(&tenant_queries);
        shard.kernel.schedule_once(spec.off(last, 5), move |k| {
            *flash_off.borrow_mut() = 1.0;
            apply_rate(&tq_off[0], tenant_rate(0, *mult_off.borrow(), 1.0));
            mark(k, "flash_end", vec![("tenant", 0.0)]);
        });
    }

    // Lease protocol + metric relay to the controller.
    shard.set_queries(rack_id, queries);
    shard
        .node(rack_id)
        .applier()
        .borrow_mut()
        .arm_lease(rack_id, spec.lease);
    let applier = Rc::clone(shard.node(rack_id).applier());
    install_lease_guard(&mut shard.kernel, applier);
    let outbox = shard.outbox();
    install_metric_relay(
        &mut shard.kernel,
        outbox,
        rack_id,
        0,
        store,
        spec.half_lease(),
    );
}

fn build_shard(spec: SoakSpec, racks: Vec<RackNodeId>) -> ClusterShard {
    let topo = NetTopology::uniform(spec.nodes, spec.latency);
    let mut shard = ClusterShard::new(Kernel::new(machines::server_config()), topo);
    // Tracing is installed on every shard before any deploys, so the
    // thread universe the no-starvation replay sees is layout-invariant.
    shard.trace = Some(shard.kernel.install_tracing(spec.ring));
    // Store resolution must keep the fence's staleness math solvent: the
    // relay ships only *completed* buckets every half lease, so the
    // controller's freshest sample lags up to bucket + relay + latency.
    // At lease/4 buckets that bound is 3/4 of a lease — attached workers
    // never read as stale, while a real partition still trips the fence.
    let resolution = SimDuration::from_nanos(spec.lease.as_nanos() / 4);
    for rack_id in racks {
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(resolution)));
        if rack_id == 0 {
            build_controller(&spec, &mut shard, store);
        } else {
            build_worker(&spec, &mut shard, rack_id, store);
        }
    }
    shard
}

fn build_cluster(spec: &SoakSpec) -> Cluster {
    let spec = *spec;
    let mut assignment: Vec<Vec<RackNodeId>> = vec![Vec::new(); spec.shards];
    for rack_id in 0..spec.nodes {
        assignment[rack_id % spec.shards].push(rack_id);
    }
    let builders = assignment
        .into_iter()
        .map(|racks| {
            Box::new(move || build_shard(spec, racks)) as Box<dyn FnOnce() -> ClusterShard + Send>
        })
        .collect();
    Cluster::new(
        NetTopology::uniform(spec.nodes, spec.latency),
        spec.shard_threads,
        builders,
    )
}

/// Per-worker operator nices, ascending rack id, deterministic op order.
/// A crashed (unbound) operator reads as the sentinel 99.
fn worker_nices(cluster: &mut Cluster) -> Vec<(RackNodeId, Vec<i32>)> {
    let mut rows: Vec<(RackNodeId, Vec<i32>)> = cluster
        .map_shards(|_| {
            Box::new(|s: &mut ClusterShard| {
                s.rack_nodes()
                    .iter()
                    .filter(|nr| nr.rack_id() != 0)
                    .map(|nr| {
                        let nices = nr
                            .queries()
                            .iter()
                            .flat_map(|q| {
                                (0..q.op_count()).map(|i| {
                                    q.cell(i)
                                        .thread()
                                        .and_then(|tid| s.kernel.thread_info(tid).ok())
                                        .map_or(99, |ti| ti.nice.value())
                                })
                            })
                            .collect();
                        (nr.rack_id(), nices)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by_key(|r| r.0);
    rows
}

/// `(engagements, expirations)` per worker, ascending rack id.
fn lease_transitions(cluster: &mut Cluster) -> Vec<(RackNodeId, (u64, u64))> {
    let mut rows: Vec<(RackNodeId, (u64, u64))> = cluster
        .map_shards(|_| {
            Box::new(|s: &mut ClusterShard| {
                s.rack_nodes()
                    .iter()
                    .filter(|nr| nr.rack_id() != 0)
                    .map(|nr| (nr.rack_id(), nr.applier().borrow().lease_transitions()))
                    .collect::<Vec<_>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by_key(|r| r.0);
    rows
}

/// One tenant's whole-run outcome on one worker.
#[derive(Debug, Clone, PartialEq)]
struct TenantSoak {
    node: RackNodeId,
    idx: usize,
    class: SloClass,
    emitted: u64,
    ingress: u64,
    egress: u64,
    e2e_mean_s: f64,
    e2e_p50_s: f64,
    /// Max over the tenant's pipelines (a conservative combined p99).
    e2e_p99_s: f64,
    lat_p99_s: f64,
}

/// Everything one soak run produced.
#[derive(Debug)]
struct SoakOutcome {
    tenants: Vec<TenantSoak>,
    probe_nices: Vec<(RackNodeId, Vec<i32>)>,
    final_nices: Vec<(RackNodeId, Vec<i32>)>,
    leases: Vec<(RackNodeId, (u64, u64))>,
    admits: u64,
    queued: u64,
    rejected: u64,
    crashes: u64,
    restarts: u64,
    crashed_left: u64,
    boosts: u64,
    starvation_ok: bool,
    starvation_detail: String,
    max_wait_s: f64,
    fabric: crate::trace::ClusterStats,
    digest: u64,
    dumps: Vec<TraceDump>,
}

fn run_soak(spec: SoakSpec) -> SoakOutcome {
    let plan = spec.net_faults.then(|| net_plan(&spec));
    let mut cluster = build_cluster(&spec);
    if let Some(p) = &plan {
        cluster.set_net_faults(p);
    }

    // Pause mid-partition to probe the CFS fallback, then run to the end;
    // the barrier pause cannot perturb delivery times, so both runs and
    // every layout see identical history.
    cluster.run_until(spec.probe_at());
    let probe_nices = worker_nices(&mut cluster);
    cluster.run_until(SimTime::ZERO + spec.end());
    let final_nices = worker_nices(&mut cluster);
    let leases = lease_transitions(&mut cluster);

    let qpt = spec.queries_per_tenant;
    type ShardRow = (Vec<TenantSoak>, (u64, u64, u64), Option<TraceDump>);
    let rows: Vec<ShardRow> = cluster
        .map_shards(move |_| {
            Box::new(move |s: &mut ClusterShard| {
                let mut tenants = Vec::new();
                let mut crashes = (0u64, 0u64, 0u64);
                for nr in s.rack_nodes().iter().filter(|nr| nr.rack_id() != 0) {
                    for (t, chunk) in nr.queries().chunks(qpt).enumerate() {
                        let mut e2e = LogHistogram::new();
                        let mut lat = LogHistogram::new();
                        let (mut emitted, mut ingress, mut egress) = (0u64, 0u64, 0u64);
                        let mut p99 = 0.0f64;
                        for q in chunk {
                            emitted += q.source_emitted();
                            ingress += q.ingress_total();
                            egress += q.egress_total();
                            let qe = q.e2e_histogram();
                            p99 = p99.max(qe.quantile(0.99).unwrap_or(0.0));
                            e2e.merge(&qe);
                            lat.merge(&q.latency_histogram());
                            crashes.0 += q.total_crashes();
                            crashes.1 += q.total_restarts();
                            crashes.2 += q.crashed_ops() as u64;
                        }
                        tenants.push(TenantSoak {
                            node: nr.rack_id(),
                            idx: t,
                            class: class_of(t),
                            emitted,
                            ingress,
                            egress,
                            e2e_mean_s: e2e.mean().unwrap_or(0.0),
                            e2e_p50_s: e2e.quantile(0.5).unwrap_or(0.0),
                            e2e_p99_s: p99,
                            lat_p99_s: lat.quantile(0.99).unwrap_or(0.0),
                        });
                    }
                }
                let dump = s
                    .trace
                    .as_ref()
                    .map(|h| crate::trace::capture(&s.kernel, h, "figf1"));
                (tenants, crashes, dump)
            })
        });

    let mut tenants = Vec::new();
    let (mut crashes, mut restarts, mut crashed_left) = (0u64, 0u64, 0u64);
    let mut dumps = Vec::new();
    for (ts, (c, r, l), dump) in rows {
        tenants.extend(ts);
        crashes += c;
        restarts += r;
        crashed_left += l;
        dumps.extend(dump);
    }
    tenants.sort_by_key(|t| (t.node, t.idx));

    let (mut admits, mut queued, mut rejected, mut boosts) = (0u64, 0u64, 0u64, 0u64);
    let mut starvation_ok = true;
    let mut starvation_detail = String::new();
    let mut max_wait_s = 0.0f64;
    for dump in &dumps {
        assert_eq!(dump.dropped, 0, "soak trace ring overflowed");
        for rec in &dump.records {
            if let TraceEvent::Instant {
                track: TraceTrack::Supervisor,
                name,
                args,
            } = &rec.event
            {
                match *name {
                    "admission" => {
                        let code = args
                            .iter()
                            .find(|(k, _)| *k == "decision")
                            .map_or(0.0, |(_, v)| *v);
                        if code == 0.0 {
                            admits += 1;
                        } else if code == 1.0 {
                            queued += 1;
                        } else {
                            rejected += 1;
                        }
                    }
                    "starve_boost" => boosts += 1,
                    _ => {}
                }
            }
        }
        match crate::trace::validate_no_starvation(dump, SimDuration::from_secs(5)) {
            Ok(s) => max_wait_s = max_wait_s.max(s.max_wait_s),
            Err(e) => {
                starvation_ok = false;
                starvation_detail = e;
            }
        }
    }

    let fabric = match &plan {
        Some(p) => crate::trace::validate_cluster_chaos(
            cluster.journal(),
            cluster.drops(),
            cluster.topology(),
            p,
        ),
        None => crate::trace::validate_cluster(cluster.journal(), cluster.topology()),
    }
    .expect("soak journal validates");
    let digest = cluster.snapshot().digest();

    SoakOutcome {
        tenants,
        probe_nices,
        final_nices,
        leases,
        admits,
        queued,
        rejected,
        crashes,
        restarts,
        crashed_left,
        boosts,
        starvation_ok,
        starvation_detail,
        max_wait_s,
        fabric,
        digest,
        dumps,
    }
}

/// Machine-checked verdicts comparing the faulted run to the reference.
#[derive(Debug)]
struct Verdicts {
    /// Mid-partition: worker 1's lease expired, every one of its
    /// operators sat at nice 0, and the unpartitioned workers held the
    /// exact reference schedule.
    partition_fallback: bool,
    /// Post-heal: final nices equal the reference run exactly, and
    /// worker 1's lease re-engaged.
    heal_reconverge: bool,
    admission_ok: bool,
    /// Per class: `(pass, worst p99, target)`.
    slo: Vec<(SloClass, bool, f64, f64)>,
    /// Well-behaved tenants (idx ≥ 2) whose goodput ratio fell below 0.9.
    isolation_violations: usize,
    isolated_count: usize,
    jain: f64,
    jain_ok: bool,
    no_starvation: bool,
}

fn verdicts(spec: &SoakSpec, reference: &SoakOutcome, faulted: &SoakOutcome) -> Verdicts {
    let row = |o: &SoakOutcome, rack: RackNodeId| -> Vec<i32> {
        o.probe_nices
            .iter()
            .find(|r| r.0 == rack)
            .map(|r| r.1.clone())
            .unwrap_or_default()
    };
    let w1_lease = faulted
        .leases
        .iter()
        .find(|r| r.0 == 1)
        .map_or((0, 0), |r| r.1);
    let others_match = (2..spec.nodes).all(|r| row(faulted, r) == row(reference, r));
    let w1_probe = row(faulted, 1);
    let reference_nontrivial = reference
        .final_nices
        .iter()
        .all(|(_, n)| n.iter().any(|&v| v != 0 && v != 99));
    let partition_fallback = w1_lease.1 >= 1
        && !w1_probe.is_empty()
        && w1_probe.iter().all(|&v| v == 0)
        && others_match
        && reference_nontrivial;
    let heal_reconverge =
        faulted.final_nices == reference.final_nices && w1_lease.0 >= 2 && reference_nontrivial;

    let workers = spec.workers() as u64;
    let admission_ok =
        faulted.admits >= 4 * workers && faulted.queued >= workers && faulted.rejected >= workers;

    let mut slo = Vec::new();
    for class in [SloClass::Premium, SloClass::Standard, SloClass::BestEffort] {
        let target = slo_target_s(class);
        let worst = faulted
            .tenants
            .iter()
            .filter(|t| t.class == class && t.emitted > 0)
            .map(|t| t.e2e_p99_s)
            .fold(0.0f64, f64::max);
        slo.push((class, worst.is_finite() && worst <= target, worst, target));
    }

    // Isolation: tenants that neither flashed (idx 0) nor crashed
    // (idx 1) must keep goodput ≥ 0.9 of what they emitted.
    let well_behaved: Vec<&TenantSoak> = faulted
        .tenants
        .iter()
        .filter(|t| t.idx >= 2 && t.emitted > 0)
        .collect();
    let isolation_violations = well_behaved
        .iter()
        .filter(|t| (t.egress as f64) < 0.9 * t.emitted as f64)
        .count();

    // Jain fairness over per-tenant goodput ratios, all active tenants.
    let ratios: Vec<f64> = faulted
        .tenants
        .iter()
        .filter(|t| t.emitted > 0)
        .map(|t| t.egress as f64 / t.emitted as f64)
        .collect();
    let jain = if ratios.is_empty() {
        0.0
    } else {
        let sum: f64 = ratios.iter().sum();
        let sq: f64 = ratios.iter().map(|x| x * x).sum();
        sum * sum / (ratios.len() as f64 * sq)
    };

    Verdicts {
        partition_fallback,
        heal_reconverge,
        admission_ok,
        slo,
        isolation_violations,
        isolated_count: well_behaved.len(),
        jain,
        jain_ok: jain >= 0.85,
        no_starvation: faulted.starvation_ok && reference.starvation_ok,
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

/// Runs the production soak and returns its figure: the faulted run's
/// per-tenant outcomes plus the machine-checked partition, admission,
/// isolation, fairness and starvation verdicts against the fault-free
/// reference. Reference and faulted runs go through the worker pool and
/// are folded in input order, so the artifact is byte-identical for any
/// `--jobs` (and, being cluster runs, for any `--shard-threads`).
pub fn figf1(opts: &ExpOptions) -> Vec<Figure> {
    let spec = if opts.quick {
        SoakSpec::quick(opts)
    } else {
        SoakSpec::full(opts)
    };
    let mut runs = crate::pool::parallel_map(opts.jobs, vec![false, true], move |net_faults| {
        run_soak(SoakSpec { net_faults, ..spec })
    });
    let faulted = runs.pop().expect("faulted run");
    let reference = runs.pop().expect("reference run");
    let v = verdicts(&spec, &reference, &faulted);

    let mut fig = Figure::new(
        "figf1",
        "production soak: multi-tenant diurnal churn under partition + full chaos",
        "tenant (worker-major index)",
    );
    fig.notes.push(format!(
        "calendar: {} days x {:.1}s; {} workers x {} tenants x {} queries = {} pipelines; \
         diurnal x0.4/1.0/1.4/0.7; flash x{FLASH} last peak; walk-ins retry at troughs; \
         whale probe day 0",
        spec.days,
        spec.day.as_secs_f64(),
        spec.workers(),
        spec.tenants_per_node,
        spec.queries_per_tenant,
        spec.workers() * spec.tenants_per_node * spec.queries_per_tenant,
    ));
    fig.notes.push(format!(
        "chaos: hotplug -1 cpu day-0 peak; operator crash+restart-failure per worker \
         (crashes={} restarts={} unrecovered={}); metric NaN+dropout; net cmd-drop/latency-spike; \
         partition ctrl<->w1 [{:.2}s,{:.2}s); watchdog boosts={}",
        faulted.crashes,
        faulted.restarts,
        faulted.crashed_left,
        (spec.partition_from() - SimTime::ZERO).as_secs_f64(),
        (spec.partition_until() - SimTime::ZERO).as_secs_f64(),
        faulted.boosts,
    ));
    fig.notes.push(format!(
        "partition_fallback={} (worker 1 lease expired and held nice 0 across {} ops at the \
         mid-partition probe; unpartitioned workers matched the reference probe)",
        pass(v.partition_fallback),
        faulted
            .probe_nices
            .iter()
            .find(|r| r.0 == 1)
            .map_or(0, |r| r.1.len()),
    ));
    fig.notes.push(format!(
        "heal_reconverge={} (final nices equal the unpartitioned reference exactly; worker 1 \
         lease engage/expire = {}/{})",
        pass(v.heal_reconverge),
        faulted.leases.iter().find(|r| r.0 == 1).map_or(0, |r| r.1 .0),
        faulted.leases.iter().find(|r| r.0 == 1).map_or(0, |r| r.1 .1),
    ));
    fig.notes.push(format!(
        "leases: {}",
        faulted
            .leases
            .iter()
            .map(|(r, (e, x))| format!("w{r}=({e},{x})"))
            .collect::<Vec<_>>()
            .join(" "),
    ));
    fig.notes.push(format!(
        "admission_mix={} (admit={} queue={} reject={})",
        pass(v.admission_ok),
        faulted.admits,
        faulted.queued,
        faulted.rejected,
    ));
    for (class, ok, worst, target) in &v.slo {
        fig.notes.push(format!(
            "slo {class:?}: {} (worst e2e p99 {worst:.3}s <= {target:.1}s)",
            pass(*ok),
        ));
    }
    fig.notes.push(format!(
        "isolation_violations={} {} ({} well-behaved tenants, goodput floor 0.90)",
        v.isolation_violations,
        pass(v.isolation_violations == 0),
        v.isolated_count,
    ));
    fig.notes.push(format!(
        "jain={:.4} {} (goodput fairness across active tenants, threshold 0.85)",
        v.jain,
        pass(v.jain_ok),
    ));
    fig.notes.push(format!(
        "no_starvation={} (trace replay, 5s window, max wait {:.3}s)",
        pass(v.no_starvation),
        faulted.max_wait_s.max(reference.max_wait_s),
    ));
    fig.notes.push(format!(
        "fabric: deliveries={} metrics={} cmds={} drops={} delayed={} digest={:016x} \
         (journal validated; digest is layout-invariant)",
        faulted.fabric.deliveries,
        faulted.fabric.metrics,
        faulted.fabric.cmds,
        faulted.fabric.drops,
        faulted.fabric.delayed,
        faulted.digest,
    ));

    let all_ok = v.partition_fallback
        && v.heal_reconverge
        && v.admission_ok
        && v.slo.iter().all(|s| s.1)
        && v.isolation_violations == 0
        && v.jain_ok
        && v.no_starvation;
    if !all_ok {
        eprintln!("warning: figf1 verdicts: {v:?}");
    }

    let secs = spec.end().as_secs_f64();
    for class in [SloClass::Premium, SloClass::Standard, SloClass::BestEffort] {
        let points: Vec<SweepPoint> = faulted
            .tenants
            .iter()
            .filter(|t| t.class == class)
            .map(|t| SweepPoint {
                x: ((t.node - 1) * spec.tenants_per_node + t.idx) as f64,
                m: Measured {
                    offered_tps: base_rate(t.idx) * spec.queries_per_tenant as f64,
                    throughput_tps: t.ingress as f64 / secs,
                    latency_mean_s: 0.0,
                    latency_p: (0.0, t.lat_p99_s, 0.0),
                    e2e_mean_s: t.e2e_mean_s,
                    e2e_p: (t.e2e_p50_s, t.e2e_p99_s, 0.0),
                    slo_target_s: slo_target_s(class),
                    slo_miss_rate: 0.0,
                    goal: 0.0,
                    queue_samples: Vec::new(),
                    utilization: 0.0,
                    ctx_switches_per_s: 0.0,
                    egress_tps: t.egress as f64 / secs,
                },
            })
            .collect();
        fig.series.push(Series {
            label: format!("{class:?}"),
            points,
        });
    }
    vec![fig]
}

/// Traced soak for `repro figf1 --trace`: one faulted run, returning the
/// per-shard kernel dumps. Panics if the partition story or the
/// no-starvation replay fails — the traced CI job gates on exactly this.
pub fn trace_figf1(opts: &ExpOptions, ring: Option<usize>) -> Vec<TraceDump> {
    let mut spec = if opts.quick {
        SoakSpec::quick(opts)
    } else {
        SoakSpec::full(opts)
    };
    spec.ring = ring.or(Some(1 << 23));
    spec.net_faults = true;
    let mut out = run_soak(spec);
    assert!(
        out.starvation_ok,
        "figf1 trace failed no-starvation replay: {}",
        out.starvation_detail
    );
    let w1 = out
        .leases
        .iter()
        .find(|r| r.0 == 1)
        .map_or((0, 0), |r| r.1);
    assert!(
        w1.0 >= 2 && w1.1 >= 1,
        "figf1 trace: worker 1 lease must engage, expire and re-engage, got {w1:?}"
    );
    let w1_probe = out
        .probe_nices
        .iter()
        .find(|r| r.0 == 1)
        .map(|r| r.1.clone())
        .unwrap_or_default();
    assert!(
        !w1_probe.is_empty() && w1_probe.iter().all(|&v| v == 0),
        "figf1 trace: partitioned worker must sit at CFS defaults mid-partition: {w1_probe:?}"
    );
    assert!(
        out.admits > 0 && out.rejected > 0,
        "figf1 trace: admission instants missing from the trace"
    );
    std::mem::take(&mut out.dumps)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: usize, shard_threads: usize, net_faults: bool) -> SoakSpec {
        SoakSpec {
            nodes: 3,
            shards,
            shard_threads,
            worker_cpus: 2,
            tenants_per_node: 4,
            queries_per_tenant: 2,
            days: 2,
            day: SimDuration::from_secs(4),
            lease: SimDuration::from_secs(1),
            latency: SimDuration::from_millis(1),
            seed: 1,
            net_faults,
            ring: None,
        }
    }

    #[test]
    fn soak_partitions_fall_back_and_reconverges() {
        let spec = tiny(1, 1, true);
        let reference = run_soak(tiny(1, 1, false));
        let faulted = run_soak(spec);
        let v = verdicts(&spec, &reference, &faulted);
        assert!(v.partition_fallback, "fallback verdict: {v:?}");
        assert!(v.heal_reconverge, "reconvergence verdict: {v:?}");
        assert!(v.admission_ok, "admission verdict: {v:?}");
        assert!(v.no_starvation, "starvation verdict: {v:?}");
        assert_eq!(v.isolation_violations, 0, "isolation: {v:?}");
        assert!(v.jain_ok, "jain {} too low", v.jain);
        assert!(faulted.crashes >= 1, "crash chaos must have fired");
        assert!(faulted.fabric.drops >= 1, "the partition must drop envelopes");
    }

    #[test]
    fn soak_outcome_is_identical_for_any_layout() {
        let summary = |o: SoakOutcome| {
            (
                o.digest,
                o.probe_nices,
                o.final_nices,
                o.leases,
                (o.admits, o.queued, o.rejected),
                (o.crashes, o.restarts, o.crashed_left),
                o.tenants,
            )
        };
        let base = summary(run_soak(tiny(1, 1, true)));
        for (shards, threads) in [(3, 1), (3, 2)] {
            assert_eq!(
                summary(run_soak(tiny(shards, threads, true))),
                base,
                "layout ({shards},{threads}) diverged"
            );
        }
    }
}
