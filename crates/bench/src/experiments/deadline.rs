//! Deadline-aware scheduling experiment (`fige1`, extension, not in the
//! paper): three ETL queries with mixed end-to-end latency targets share
//! one Odroid-class node under a bursty rate calendar, and three
//! schedulers compete on tail latency and SLO-miss rate:
//!
//! * **OS** — the default CFS scheduler, deadline-blind.
//! * **LACHESIS-QS** — the paper's queue-size policy via `nice`: balances
//!   backlog but treats a 0.5 s query exactly like an 8 s one.
//! * **DEADLINE** — the Cameo-style [`lachesis::DeadlinePolicy`]: static
//!   per-operator slack budgets from DAG depth, refined at runtime with
//!   the DRS-style waiting-time estimate, steered through the same `nice`
//!   translator.
//!
//! The claim under test: when the box is temporarily overloaded, a
//! deadline-aware policy spends the scarce CPU where slack is scarce, so
//! the tight query's p99 and the aggregate SLO-miss rate both drop
//! relative to OS, without doing worse than LACHESIS-QS. Verdicts land in
//! the figure notes (`slo_order=...`, `deadline_vs_os=...`,
//! `deadline_vs_qs=...`) where CI greps for them.

use std::rc::Rc;

use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery, SpeKind};

use crate::harness::{apply_slo, average_runs, new_store, Distributions, GoalKind, Measured, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::schedulers::{attach_deadline, attach_lachesis, PolicyChoice, TranslatorChoice};
use crate::ExpOptions;

/// Per-query end-to-end latency targets, seconds: tight / mid / loose.
const TARGETS_S: [f64; 3] = [0.5, 2.0, 8.0];

/// Steady offered rate per query, tuples/s (~2.7 of 4 cores total).
const BASE_RATE_TPS: f64 = 350.0;

/// Rate during the all-query burst window (~1.35x overload in total).
const BURST_RATE_TPS: f64 = 700.0;

/// Rate during the tight-query-only burst near the end of the run.
const TIGHT_BURST_TPS: f64 = 1050.0;

/// The three schedulers compared, in series order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DlSched {
    Os,
    Qs,
    Deadline,
}

const SCHEDS: [DlSched; 3] = [DlSched::Os, DlSched::Qs, DlSched::Deadline];

impl DlSched {
    fn label(self) -> &'static str {
        match self {
            DlSched::Os => "OS",
            DlSched::Qs => "LACHESIS-QS",
            DlSched::Deadline => "DEADLINE",
        }
    }
}

/// One query's share of one run.
#[derive(Debug, Clone)]
struct QueryOutcome {
    m: Measured,
    /// End-to-end samples behind `m.slo_miss_rate`, for weighted
    /// aggregation across queries with very different throughputs.
    e2e_samples: u64,
}

/// Builds one query's ETL graph, renamed so metric paths stay disjoint.
fn dl_graph(idx: usize, rate: f64, seed: u64) -> spe::LogicalGraph {
    let mut g = queries::etl(rate, seed);
    g.name = format!("etl-dl{idx}");
    g
}

/// One (scheduler, seed) run: three resident ETL queries, a two-phase
/// burst calendar, per-query measurements with SLO verdicts.
fn run_deadline_inner(sched: DlSched, seed: u64, cfg: RunConfig) -> Vec<QueryOutcome> {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = new_store();

    let mut queries: Vec<RunningQuery> = Vec::new();
    for (idx, _) in TARGETS_S.iter().enumerate() {
        let q_seed = seed.wrapping_add(idx as u64);
        let g = dl_graph(idx, BASE_RATE_TPS, q_seed);
        let mut config = EngineConfig::storm();
        config.seed = q_seed;
        let q = deploy(
            &mut kernel,
            g,
            config,
            &Placement::single(node),
            Some(Rc::clone(&store)),
        )
        .expect("deploy deadline query");
        queries.push(q);
    }

    match sched {
        DlSched::Os => {}
        DlSched::Qs => attach_lachesis(
            &mut kernel,
            SpeKind::Storm,
            queries.clone(),
            Rc::clone(&store),
            PolicyChoice::Qs,
            TranslatorChoice::Nice,
            seed,
        ),
        DlSched::Deadline => {
            let targets: Vec<(usize, f64)> =
                TARGETS_S.iter().enumerate().map(|(i, &t)| (i, t)).collect();
            attach_deadline(
                &mut kernel,
                SpeKind::Storm,
                queries.clone(),
                Rc::clone(&store),
                &targets,
                TARGETS_S[1],
            );
        }
    }

    // Burst calendar, scheduled up front (delays include the warm-up):
    // every query doubles its rate in [3/10, 5/10) of the measured phase,
    // then the tight query alone triples in [6/10, 7/10).
    let m = cfg.measure.as_nanos();
    let tick = |tenths: u64| cfg.warmup + SimDuration::from_nanos(m / 10 * tenths);
    let flips: [(u64, usize, f64); 8] = [
        (3, 0, BURST_RATE_TPS),
        (3, 1, BURST_RATE_TPS),
        (3, 2, BURST_RATE_TPS),
        (5, 0, BASE_RATE_TPS),
        (5, 1, BASE_RATE_TPS),
        (5, 2, BASE_RATE_TPS),
        (6, 0, TIGHT_BURST_TPS),
        (7, 0, BASE_RATE_TPS),
    ];
    for (tenths, idx, rate) in flips {
        let q = queries[idx].clone();
        kernel.schedule_once(tick(tenths), move |_k| {
            for s in q.sources() {
                s.borrow_mut().set_rate(rate);
            }
        });
    }

    // Warm up at the base rates, then measure across the burst calendar.
    kernel.run_for(cfg.warmup);
    for q in &queries {
        q.reset_stats();
    }
    let before = kernel.node_stats(node).expect("node stats");
    kernel.run_for(cfg.measure);
    let after = kernel.node_stats(node).expect("node stats");

    let secs = cfg.measure.as_secs_f64();
    let utilization =
        (after.busy - before.busy).as_secs_f64() / (secs * after.cpus.max(1) as f64);
    let ctx_per_s = (after.ctx_switches - before.ctx_switches) as f64 / secs;

    let mut out = Vec::new();
    for (idx, q) in queries.iter().enumerate() {
        let latency = q.latency_histogram();
        let e2e = q.e2e_histogram();
        let pct = |h: &spe::LogHistogram, p: f64| h.quantile(p).unwrap_or(0.0);
        let e2e_samples = e2e.count();
        let mut measured = Measured {
            offered_tps: BASE_RATE_TPS,
            throughput_tps: q.ingress_total() as f64 / secs,
            latency_mean_s: latency.mean().unwrap_or(0.0),
            latency_p: (pct(&latency, 0.5), pct(&latency, 0.99), pct(&latency, 0.999)),
            e2e_mean_s: e2e.mean().unwrap_or(0.0),
            e2e_p: (pct(&e2e, 0.5), pct(&e2e, 0.99), pct(&e2e, 0.999)),
            slo_target_s: 0.0,
            slo_miss_rate: 0.0,
            goal: 0.0,
            queue_samples: Vec::new(),
            utilization,
            ctx_switches_per_s: ctx_per_s,
            egress_tps: q.egress_total() as f64 / secs,
        };
        let dists = Distributions { latency, e2e };
        apply_slo(&mut measured, &dists, TARGETS_S[idx]);
        out.push(QueryOutcome { m: measured, e2e_samples });
    }
    out
}

/// Aggregate tail summary of one scheduler across all queries and reps.
#[derive(Debug, Clone, Copy, Default)]
struct SchedSummary {
    /// Weighted SLO-miss rate: missed samples / total samples.
    miss_rate: f64,
    /// Averaged p99 end-to-end latency of the tight (0.5 s) query.
    tight_p99_s: f64,
}

/// Runs the deadline experiment and returns its figure.
pub fn fige1(opts: &ExpOptions) -> Vec<Figure> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::AvgLatency)
    } else {
        RunConfig::full(GoalKind::AvgLatency)
    };
    let reps = opts.reps.max(1) as u64;
    let specs: Vec<(usize, u64)> = SCHEDS
        .iter()
        .enumerate()
        .flat_map(|(s, _)| (0..reps).map(move |r| (s, 1 + r)))
        .collect();
    let results = crate::pool::parallel_map(opts.jobs, specs.clone(), move |(s, seed)| {
        run_deadline_inner(SCHEDS[s], seed, cfg)
    });

    let mut fig = Figure::new(
        "fige1",
        "Deadline-aware scheduling: 3 ETL queries with mixed SLO targets under bursty load",
        "per-query end-to-end latency target (s)",
    );
    fig.notes.push(format!(
        "calendar: 3 queries at {BASE_RATE_TPS:.0} t/s, all burst to {BURST_RATE_TPS:.0} t/s \
         [3/10,5/10), tight query alone to {TIGHT_BURST_TPS:.0} t/s [6/10,7/10); \
         targets {TARGETS_S:?} s; reps={reps}"
    ));

    // Regroup (sched x rep) results: per-sched per-query averages plus
    // the sample-weighted aggregate miss rate.
    let mut summaries = [SchedSummary::default(); 3];
    for (s, sched) in SCHEDS.iter().enumerate() {
        let runs: Vec<&Vec<QueryOutcome>> = results
            .iter()
            .zip(&specs)
            .filter(|(_, (spec_s, _))| *spec_s == s)
            .map(|(r, _)| r)
            .collect();
        let mut missed = 0.0;
        let mut total = 0.0;
        let mut points = Vec::new();
        for (idx, &target) in TARGETS_S.iter().enumerate() {
            let per_query: Vec<Measured> =
                runs.iter().map(|r| r[idx].m.clone()).collect();
            for r in &runs {
                missed += r[idx].m.slo_miss_rate * r[idx].e2e_samples as f64;
                total += r[idx].e2e_samples as f64;
            }
            let avg = average_runs(per_query);
            points.push(SweepPoint { x: target, m: avg });
        }
        summaries[s] = SchedSummary {
            miss_rate: missed / total.max(1.0),
            tight_p99_s: points[0].m.e2e_p.1,
        };
        fig.notes.push(format!(
            "{}: agg_miss_rate={:.4} tight_p99={:.3}s mid_p99={:.3}s loose_p99={:.3}s",
            sched.label(),
            summaries[s].miss_rate,
            points[0].m.e2e_p.1,
            points[1].m.e2e_p.1,
            points[2].m.e2e_p.1,
        ));
        fig.series.push(Series { label: sched.label().to_string(), points });
    }

    // Verdicts. DEADLINE must beat OS on both the tight query's tail and
    // the aggregate miss rate, and must not do worse than LACHESIS-QS on
    // the aggregate miss rate.
    let [os, qs, dl] = summaries;
    let eps = 1e-12;
    let vs_os = dl.tight_p99_s < os.tight_p99_s && dl.miss_rate <= os.miss_rate + eps;
    let vs_qs = dl.miss_rate <= qs.miss_rate + eps;
    let order = dl.miss_rate <= os.miss_rate + eps;
    fig.notes.push(format!(
        "deadline_vs_os={} (tight p99 {:.3}s < {:.3}s, miss {:.4} <= {:.4})",
        if vs_os { "PASS" } else { "FAIL" },
        dl.tight_p99_s,
        os.tight_p99_s,
        dl.miss_rate,
        os.miss_rate,
    ));
    fig.notes.push(format!(
        "deadline_vs_qs={} (miss {:.4} <= {:.4})",
        if vs_qs { "PASS" } else { "FAIL" },
        dl.miss_rate,
        qs.miss_rate,
    ));
    fig.notes.push(format!(
        "slo_order={} (DEADLINE miss {:.4} <= OS miss {:.4})",
        if order { "PASS" } else { "FAIL" },
        dl.miss_rate,
        os.miss_rate,
    ));
    if !vs_os || !vs_qs {
        eprintln!(
            "warning: fige1: deadline_vs_os={vs_os} deadline_vs_qs={vs_qs} \
             (os miss {:.4} qs miss {:.4} dl miss {:.4})",
            os.miss_rate, qs.miss_rate, dl.miss_rate
        );
    }
    vec![fig]
}
