//! Chaos experiment (robustness extension, not in the paper): a paper
//! workload (RIoTBench ETL on Storm) scheduled by LACHESIS-QS while a
//! seeded [`FaultPlan`] injects a metric outage, NaN corruption and
//! scheduler-apply failures during the measured phase.
//!
//! The run verifies the two degradation claims of the supervisor design:
//! latency stays *bounded* (the faulted run is compared against the clean
//! run), and the schedule *re-converges* (every degraded interval in the
//! fault log is closed by the end of the run). Verdicts are recorded in
//! the figure notes.
//!
//! A second scenario ([`figc2`]) injects *substrate* faults instead of
//! middleware faults: a CPU goes offline mid-run (hotplug), an operator
//! fail-stops and is restarted by the SPE supervisor with backoff. The
//! traced variant gates on trace-shape validation — migration events
//! present, no thread left on a dead CPU ([`crate::trace::validate_hotplug`]).

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
use lachesis_metrics::FaultPlan;
use simos::{machines, Kernel, SimDuration, SimTime};
use spe::{deploy, install_chaos, EngineConfig, Placement, RestartPolicy};

use crate::harness::{average_runs, new_store, run_trial, GoalKind, Measured, RunConfig};
use crate::report::{Figure, Series, SweepPoint};
use crate::schedulers::{run_point, PointSpec, Sched};
use crate::ExpOptions;

/// Fault-log summary of one faulted run.
#[derive(Debug, Clone, Default)]
struct ChaosStats {
    fetch_errors: u64,
    apply_errors: u64,
    intervals: usize,
    open_intervals: usize,
    fell_back: bool,
    max_recovery_s: f64,
}

/// The chaos scenario, scaled to the run's measured phase: NaN corruption
/// early, a hard metric outage (long enough to cross the fallback
/// threshold on full-length runs) in the middle, apply failures near the
/// end. All randomness derives from `seed`.
fn chaos_plan(cfg: &RunConfig, seed: u64) -> FaultPlan {
    let start = SimTime::ZERO + cfg.warmup;
    let m = cfg.measure.as_nanos();
    let tick = |tenths: u64| start + SimDuration::from_nanos(m / 10 * tenths);
    let outage_len = SimDuration::from_nanos((m / 3).min(SimDuration::from_secs(8).as_nanos()));
    FaultPlan::new(seed)
        .nan_values(tick(1), tick(2), 1.0)
        .metric_dropout(tick(1), tick(2), 0.3)
        .fetch_failure(Some("storm"), tick(3), tick(3) + outage_len, 1.0)
        .apply_failure(Some("set_nice"), tick(8), tick(9), 0.5)
}

/// One faulted LACHESIS-QS/nice point: like `run_point`, plus the fault
/// plan wired into both the driver (metric faults) and the kernel
/// (apply faults).
fn run_faulted_point(rate: f64, seed: u64, cfg: RunConfig) -> (Measured, ChaosStats) {
    let (m, s, _) = run_faulted_point_inner(rate, seed, cfg, None);
    (m, s)
}

fn run_faulted_point_inner(
    rate: f64,
    seed: u64,
    cfg: RunConfig,
    trace: Option<crate::schedulers::TraceOpts>,
) -> (Measured, ChaosStats, Option<crate::trace::TraceDump>) {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    // Install before deploy so operator bodies emit batch spans too.
    let handle = trace.as_ref().map(|t| kernel.install_tracing(t.ring));
    let store = new_store();
    let mut config = EngineConfig::storm();
    config.seed = seed;
    let query = deploy(
        &mut kernel,
        queries::etl(rate, seed),
        config,
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");

    let plan = Rc::new(RefCell::new(chaos_plan(&cfg, seed)));
    {
        let hook_plan = Rc::clone(&plan);
        kernel.set_fault_hook(move |op, now| hook_plan.borrow_mut().kernel_fault(op, now));
    }
    let lachesis = LachesisBuilder::new()
        .driver(
            StoreDriver::storm(vec![query.clone()], Rc::clone(&store))
                .with_faults(Rc::clone(&plan)),
        )
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::new(SimDuration::from_secs(1)),
            NiceTranslator::new(),
        )
        .build();
    let log = lachesis.fault_log();
    lachesis.start(&mut kernel);
    if let Some(h) = &handle {
        crate::trace::install_counter_samplers(&mut kernel, h);
    }

    let (m, _) = run_trial(&mut kernel, &[node], &[query], &cfg);
    let dump = trace.map(|t| {
        crate::trace::capture(&kernel, handle.as_ref().expect("handle installed"), &t.label)
    });
    let log = log.borrow();
    let stats = ChaosStats {
        fetch_errors: log.error_count("metric_fetch"),
        apply_errors: log.error_count("apply_kernel"),
        intervals: log.degraded_intervals().len(),
        open_intervals: log.currently_degraded().len(),
        fell_back: log.degraded_intervals().iter().any(|i| i.fell_back),
        max_recovery_s: log
            .recovery_times()
            .iter()
            .map(|d| d.as_nanos() as f64 / 1e9)
            .fold(0.0, f64::max),
    };
    (m, stats, dump)
}

/// Traced chaos trials for `repro figc1 --trace`: one faulted
/// LACHESIS-QS run per repetition, through the worker pool (folded back
/// in input order, so the trace artifact is byte-identical for any
/// `--jobs`). These runs contain the full supervisor health timeline —
/// engage, degrade, fallback, recover — as first-class trace events.
pub fn trace_figc1(opts: &ExpOptions, ring: Option<usize>) -> Vec<crate::trace::TraceDump> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let rate = 1500.0;
    let seeds: Vec<u64> = (0..opts.reps.max(1) as u64).map(|r| 1 + r).collect();
    crate::pool::parallel_map(opts.jobs, seeds, move |seed| {
        let trace = crate::schedulers::TraceOpts {
            ring,
            label: format!("figc1: ETL@{rate} faulted seed={seed}"),
        };
        let (_, _, dump) = run_faulted_point_inner(rate, seed, cfg, Some(trace));
        dump.expect("traced run produces a dump")
    })
}

/// Runs the chaos experiment and returns its figure.
pub fn figc1(opts: &ExpOptions) -> Vec<Figure> {
    let rates: Vec<f64> = if opts.quick {
        vec![1500.0]
    } else {
        vec![1200.0, 1375.0, 1500.0, 1625.0]
    };
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };

    let mut fig = Figure::new(
        "figc1",
        "ETL in Storm under fault injection: LACHESIS-QS vs faulted LACHESIS-QS",
        "rate (t/s)",
    );
    fig.notes.push(format!(
        "chaos scenario: NaN+dropout window, metric outage, set_nice faults; reps={}",
        opts.reps
    ));

    let clean_sched = Sched::Lachesis(
        crate::schedulers::PolicyChoice::Qs,
        crate::schedulers::TranslatorChoice::Nice,
    );
    // Each (rate, rep) needs one clean and one faulted trial; both are
    // independent, so they all go through the pool as separate inputs and
    // are folded back below in input order.
    let trials: Vec<(f64, u64, bool)> = rates
        .iter()
        .flat_map(|&rate| {
            (0..opts.reps as u64)
                .flat_map(move |rep| [(rate, 1 + rep, false), (rate, 1 + rep, true)])
        })
        .collect();
    let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, seed, faulted)| {
        if faulted {
            let (m, s) = run_faulted_point(rate, seed, cfg);
            (m, Some(s))
        } else {
            let (m, _) = run_point(PointSpec {
                graph: Box::new(queries::etl),
                engine: spe::SpeKind::Storm,
                sched: clean_sched.clone(),
                rate,
                seed,
                cfg,
                blocking: None,
                downstream: vec![],
            });
            (m, None)
        }
    })
    .into_iter();

    let mut clean_points = Vec::new();
    let mut faulted_points = Vec::new();
    for &rate in &rates {
        let mut clean_runs = Vec::new();
        let mut faulted_runs = Vec::new();
        let mut stats = ChaosStats::default();
        for _rep in 0..opts.reps {
            let (m, _) = results.next().expect("clean trial result");
            clean_runs.push(m);
            let (m, s) = results.next().expect("faulted trial result");
            let s = s.expect("faulted trial carries stats");
            faulted_runs.push(m);
            stats.fetch_errors += s.fetch_errors;
            stats.apply_errors += s.apply_errors;
            stats.intervals += s.intervals;
            stats.open_intervals += s.open_intervals;
            stats.fell_back |= s.fell_back;
            stats.max_recovery_s = stats.max_recovery_s.max(s.max_recovery_s);
        }
        let clean = average_runs(clean_runs);
        let faulted = average_runs(faulted_runs);
        // Verdicts: bounded latency (faulted p99 within 10x of clean and
        // finite) and re-convergence (no degraded interval left open).
        let bounded = faulted.latency_p.1.is_finite()
            && faulted.latency_p.1 <= clean.latency_p.1.max(1e-3) * 10.0;
        let reconverged = stats.open_intervals == 0 && stats.intervals > 0;
        fig.notes.push(format!(
            "rate {rate}: bounded_latency={} reconverged={} fetch_errors={} apply_errors={} \
             intervals={} fell_back={} max_recovery={:.1}s",
            if bounded { "PASS" } else { "FAIL" },
            if reconverged { "PASS" } else { "FAIL" },
            stats.fetch_errors,
            stats.apply_errors,
            stats.intervals,
            stats.fell_back,
            stats.max_recovery_s,
        ));
        if !bounded || !reconverged {
            eprintln!(
                "warning: figc1 rate {rate}: bounded={bounded} reconverged={reconverged}"
            );
        }
        clean_points.push(SweepPoint {
            x: rate,
            m: {
                let mut m = clean;
                m.queue_samples.clear();
                m
            },
        });
        faulted_points.push(SweepPoint {
            x: rate,
            m: {
                let mut m = faulted;
                m.queue_samples.clear();
                m
            },
        });
    }
    fig.series.push(Series {
        label: "LACHESIS-QS".into(),
        points: clean_points,
    });
    fig.series.push(Series {
        label: "LACHESIS-QS+faults".into(),
        points: faulted_points,
    });
    vec![fig]
}

// ------------------------------------------------------------- substrate

/// Substrate-fault summary of one run: SPE-level crash/restart counters
/// plus the middleware supervisor's view of the same outage.
#[derive(Debug, Clone, Default)]
struct SubstrateStats {
    crashes: u64,
    restarts: u64,
    crashed_left: usize,
    intervals: usize,
    open_intervals: usize,
}

/// Offset into the run: warm-up plus `tenths`/10 of the measured phase.
fn phase_tick(cfg: &RunConfig, tenths: u64) -> SimDuration {
    cfg.warmup + SimDuration::from_nanos(cfg.measure.as_nanos() / 10 * tenths)
}

/// The substrate scenario, scaled to the run's measured phase: the ETL
/// `range_filter` operator fail-stops at 30% of the measured phase, with
/// restart attempts themselves failing half the time until 50%. The CPU
/// hotplug window ([`figc2`] offlines core 3 at 20%, back at 70%) is
/// scheduled on the kernel calendar, not in the plan.
fn substrate_plan(cfg: &RunConfig, seed: u64) -> FaultPlan {
    let start = SimTime::ZERO + cfg.warmup;
    let m = cfg.measure.as_nanos();
    let tick = |tenths: u64| start + SimDuration::from_nanos(m / 10 * tenths);
    FaultPlan::new(seed)
        .operator_crash("range_filter#0", tick(3))
        .restart_failure(Some("range_filter#0"), tick(3), tick(5), 0.5)
}

/// One substrate-faulted LACHESIS-QS point: ETL on Storm with a CPU
/// hotplug window and an operator crash/restart cycle injected while the
/// middleware keeps scheduling. The crashed operator's missing thread
/// also exercises the middleware supervisor (apply failures degrade the
/// binding until the operator is back).
fn run_substrate_point_inner(
    rate: f64,
    seed: u64,
    cfg: RunConfig,
    trace: Option<crate::schedulers::TraceOpts>,
) -> (Measured, SubstrateStats, Option<crate::trace::TraceDump>) {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let handle = trace.as_ref().map(|t| kernel.install_tracing(t.ring));
    let store = new_store();
    let mut config = EngineConfig::storm();
    config.seed = seed;
    let query = deploy(
        &mut kernel,
        queries::etl(rate, seed),
        config,
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");

    let plan = Rc::new(RefCell::new(substrate_plan(&cfg, seed)));
    install_chaos(&mut kernel, &query, &plan, RestartPolicy::default());
    // Core 3 of the 4-core node goes offline at 20% of the measured
    // phase and comes back at 70%: threads must migrate off, dispatch
    // must avoid the dead CPU, and capacity returns for the tail.
    kernel.schedule_cpu_offline(phase_tick(&cfg, 2), node, 3);
    kernel.schedule_cpu_online(phase_tick(&cfg, 7), node, 3);

    let lachesis = LachesisBuilder::new()
        .driver(StoreDriver::storm(vec![query.clone()], Rc::clone(&store)))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::new(SimDuration::from_secs(1)),
            NiceTranslator::new(),
        )
        .build();
    let log = lachesis.fault_log();
    lachesis.start(&mut kernel);
    if let Some(h) = &handle {
        crate::trace::install_counter_samplers(&mut kernel, h);
    }

    let (m, _) = run_trial(&mut kernel, &[node], std::slice::from_ref(&query), &cfg);
    let dump = trace.map(|t| {
        crate::trace::capture(&kernel, handle.as_ref().expect("handle installed"), &t.label)
    });
    let log = log.borrow();
    let stats = SubstrateStats {
        crashes: query.total_crashes(),
        restarts: query.total_restarts(),
        crashed_left: query.crashed_ops(),
        intervals: log.degraded_intervals().len(),
        open_intervals: log.currently_degraded().len(),
    };
    (m, stats, dump)
}

/// Traced substrate-chaos trials for `repro figc2 --trace`: each dump is
/// gated on hotplug trace-shape validation — the offline and online
/// events are present, threads migrated off the dying CPU, and nothing
/// was ever dispatched to (or stranded on) a dead CPU.
///
/// # Panics
///
/// Panics (failing the CI gate) when a trace violates the hotplug shape
/// or the crashed operator never restarted.
pub fn trace_figc2(opts: &ExpOptions, ring: Option<usize>) -> Vec<crate::trace::TraceDump> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let rate = 1500.0;
    let seeds: Vec<u64> = (0..opts.reps.max(1) as u64).map(|r| 1 + r).collect();
    crate::pool::parallel_map(opts.jobs, seeds, move |seed| {
        let trace = crate::schedulers::TraceOpts {
            ring,
            label: format!("figc2: ETL@{rate} substrate faults seed={seed}"),
        };
        let (_, stats, dump) = run_substrate_point_inner(rate, seed, cfg, Some(trace));
        let dump = dump.expect("traced run produces a dump");
        let hp = crate::trace::validate_hotplug(&dump)
            .unwrap_or_else(|e| panic!("figc2 seed {seed}: hotplug trace invalid: {e}"));
        assert!(
            hp.offlines >= 1 && hp.onlines >= 1,
            "figc2 seed {seed}: hotplug events missing from trace: {hp:?}"
        );
        assert!(
            hp.migrations >= 1,
            "figc2 seed {seed}: no thread migrated off the dying CPU: {hp:?}"
        );
        assert!(
            stats.crashes >= 1 && stats.restarts >= 1 && stats.crashed_left == 0,
            "figc2 seed {seed}: operator crash/restart cycle incomplete: {stats:?}"
        );
        dump
    })
}

/// Runs the substrate-chaos experiment and returns its figure.
pub fn figc2(opts: &ExpOptions) -> Vec<Figure> {
    let rates: Vec<f64> = if opts.quick {
        vec![1500.0]
    } else {
        vec![1200.0, 1375.0, 1500.0, 1625.0]
    };
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };

    let mut fig = Figure::new(
        "figc2",
        "ETL in Storm under substrate faults: CPU hotplug + operator crash/restart",
        "rate (t/s)",
    );
    fig.notes.push(format!(
        "substrate scenario: core 3 offline for 50% of the measured phase, \
         range_filter fail-stop + supervised restart; reps={}",
        opts.reps
    ));

    let clean_sched = Sched::Lachesis(
        crate::schedulers::PolicyChoice::Qs,
        crate::schedulers::TranslatorChoice::Nice,
    );
    let trials: Vec<(f64, u64, bool)> = rates
        .iter()
        .flat_map(|&rate| {
            (0..opts.reps as u64)
                .flat_map(move |rep| [(rate, 1 + rep, false), (rate, 1 + rep, true)])
        })
        .collect();
    let mut results = crate::pool::parallel_map(opts.jobs, trials, |(rate, seed, faulted)| {
        if faulted {
            let (m, s, _) = run_substrate_point_inner(rate, seed, cfg, None);
            (m, Some(s))
        } else {
            let (m, _) = run_point(PointSpec {
                graph: Box::new(queries::etl),
                engine: spe::SpeKind::Storm,
                sched: clean_sched.clone(),
                rate,
                seed,
                cfg,
                blocking: None,
                downstream: vec![],
            });
            (m, None)
        }
    })
    .into_iter();

    let mut clean_points = Vec::new();
    let mut faulted_points = Vec::new();
    for &rate in &rates {
        let mut clean_runs = Vec::new();
        let mut faulted_runs = Vec::new();
        let mut stats = SubstrateStats::default();
        for _rep in 0..opts.reps {
            let (m, _) = results.next().expect("clean trial result");
            clean_runs.push(m);
            let (m, s) = results.next().expect("faulted trial result");
            let s = s.expect("faulted trial carries stats");
            faulted_runs.push(m);
            stats.crashes += s.crashes;
            stats.restarts += s.restarts;
            stats.crashed_left += s.crashed_left;
            stats.intervals += s.intervals;
            stats.open_intervals += s.open_intervals;
        }
        let clean = average_runs(clean_runs);
        let faulted = average_runs(faulted_runs);
        // Verdicts: the crashed operator recovered, and degradation was
        // graceful — non-zero throughput at a meaningful fraction of the
        // clean run's despite losing a core and an operator for a while.
        let recovered = stats.crashes > 0 && stats.restarts > 0 && stats.crashed_left == 0;
        let ratio = if clean.throughput_tps > 0.0 {
            faulted.throughput_tps / clean.throughput_tps
        } else {
            0.0
        };
        let graceful = faulted.throughput_tps > 0.0 && ratio > 0.3;
        fig.notes.push(format!(
            "rate {rate}: recovered={} graceful_degradation={} tput_ratio={:.2} \
             crashes={} restarts={} intervals={} open={}",
            if recovered { "PASS" } else { "FAIL" },
            if graceful { "PASS" } else { "FAIL" },
            ratio,
            stats.crashes,
            stats.restarts,
            stats.intervals,
            stats.open_intervals,
        ));
        if !recovered || !graceful {
            eprintln!("warning: figc2 rate {rate}: recovered={recovered} graceful={graceful}");
        }
        clean_points.push(SweepPoint {
            x: rate,
            m: {
                let mut m = clean;
                m.queue_samples.clear();
                m
            },
        });
        faulted_points.push(SweepPoint {
            x: rate,
            m: {
                let mut m = faulted;
                m.queue_samples.clear();
                m
            },
        });
    }
    fig.series.push(Series {
        label: "LACHESIS-QS".into(),
        points: clean_points,
    });
    fig.series.push(Series {
        label: "LACHESIS-QS+substrate-faults".into(),
        points: faulted_points,
    });
    vec![fig]
}
