//! Table 1: summary of configurations and performance highlights —
//! Lachesis vs each experiment's baseline, at a representative
//! near-saturation operating point.

use simos::SimDuration;
use spe::{BlockingConfig, SpeKind};

use crate::experiments::single_query::QueryKind;
use crate::harness::{GoalKind, RunConfig};
use crate::schedulers::{run_point, PointSpec, PolicyChoice, Sched, TranslatorChoice};
use crate::ExpOptions;

/// One row of the summary table.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Experiment name (paper section).
    pub experiment: String,
    /// Baseline scheduler.
    pub baseline: String,
    /// Paper goals exercised.
    pub goals: String,
    /// Operating point (rate in t/s).
    pub rate: f64,
    /// Throughput change of Lachesis vs baseline, percent.
    pub throughput_gain_pct: f64,
    /// Baseline avg latency / Lachesis avg latency.
    pub latency_ratio: f64,
    /// Baseline avg end-to-end latency / Lachesis avg e2e latency.
    pub e2e_ratio: f64,
}

fn single_point(
    query: QueryKind,
    engine: SpeKind,
    sched: Sched,
    rate: f64,
    cfg: RunConfig,
    blocking: Option<BlockingConfig>,
    downstream: Vec<Vec<usize>>,
) -> crate::harness::Measured {
    let graph: Box<dyn Fn(f64, u64) -> spe::LogicalGraph> = match query {
        QueryKind::Etl | QueryKind::Stats | QueryKind::Lr | QueryKind::Vs => {
            Box::new(move |r, s| query.build(r, s))
        }
    };
    let (m, _) = run_point(PointSpec {
        graph,
        engine,
        sched,
        rate,
        seed: 1,
        cfg,
        blocking,
        downstream,
    });
    m
}

fn syn_point(sched: Sched, rate: f64, cfg: RunConfig, blocking: Option<BlockingConfig>) -> crate::harness::Measured {
    let template = queries::syn(1.0, queries::SynConfig::default());
    let downstream = queries::downstream_indices(&template);
    let (m, _) = run_point(PointSpec {
        graph: Box::new(|r, _s| queries::syn(r, queries::SynConfig::default())),
        engine: SpeKind::Liebre,
        sched,
        rate,
        seed: 1,
        cfg,
        blocking,
        downstream,
    });
    m
}

fn row(
    experiment: &str,
    baseline_name: &str,
    goals: &str,
    rate: f64,
    baseline: &crate::harness::Measured,
    lachesis: &crate::harness::Measured,
) -> Table1Row {
    Table1Row {
        experiment: experiment.into(),
        baseline: baseline_name.into(),
        goals: goals.into(),
        rate,
        throughput_gain_pct: (lachesis.throughput_tps / baseline.throughput_tps - 1.0) * 100.0,
        latency_ratio: baseline.latency_mean_s / lachesis.latency_mean_s.max(1e-9),
        e2e_ratio: baseline.e2e_mean_s / lachesis.e2e_mean_s.max(1e-9),
    }
}

/// One trial of the summary table: a single-query point or a SYN point.
#[derive(Debug, Clone)]
enum Trial {
    Single(QueryKind, SpeKind, Sched, f64, RunConfig),
    Syn(Sched, f64, RunConfig, Option<BlockingConfig>),
}

/// Computes the summary rows.
pub fn rows(opts: &ExpOptions) -> Vec<Table1Row> {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    // §6.4: SYN with blocking vs Haren, near saturation. The paper injects
    // p=0.001 per tuple; a real blocked JVM thread also causes lock/GC
    // convoying the simulator does not model, so the injection frequency
    // is scaled x10 to yield a comparable fraction of stalled worker time
    // (see EXPERIMENTS.md).
    let blocking = Some(BlockingConfig {
        fraction: 0.1,
        probability: 0.01,
        max_duration: SimDuration::from_millis(200),
    });
    let cfg_fcfs = RunConfig {
        goal: GoalKind::MaxHeadAge,
        ..cfg
    };
    let qs_nice = Sched::Lachesis(PolicyChoice::Qs, TranslatorChoice::Nice);

    // Baseline/Lachesis pairs for each row, all independent: run the whole
    // batch through the worker pool, then pair results up in order.
    let trials = vec![
        // §6.2: ETL vs EdgeWise, at Lachesis' saturation point.
        Trial::Single(QueryKind::Etl, SpeKind::Storm, Sched::EdgeWise, 1750.0, cfg),
        Trial::Single(QueryKind::Etl, SpeKind::Storm, qs_nice.clone(), 1750.0, cfg),
        // §6.3: VS in Storm vs OS, at Lachesis' knee (OS far beyond its own).
        Trial::Single(QueryKind::Vs, SpeKind::Storm, Sched::Os, 2000.0, cfg),
        Trial::Single(QueryKind::Vs, SpeKind::Storm, qs_nice.clone(), 2000.0, cfg),
        Trial::Syn(
            Sched::Haren(PolicyChoice::Fcfs, SimDuration::from_millis(50)),
            1750.0,
            cfg_fcfs,
            blocking,
        ),
        Trial::Syn(
            Sched::Lachesis(PolicyChoice::Fcfs, TranslatorChoice::Shares),
            1750.0,
            cfg_fcfs,
            blocking,
        ),
        // §6.3: LR in Storm vs OS (also the scale-out workload).
        Trial::Single(QueryKind::Lr, SpeKind::Storm, Sched::Os, 4_500.0, cfg),
        Trial::Single(QueryKind::Lr, SpeKind::Storm, qs_nice, 4_500.0, cfg),
    ];
    let m = crate::pool::parallel_map(opts.jobs, trials, |t| match t {
        Trial::Single(query, engine, sched, rate, cfg) => {
            single_point(query, engine, sched, rate, cfg, None, vec![])
        }
        Trial::Syn(sched, rate, cfg, blocking) => syn_point(sched, rate, cfg, blocking),
    });

    vec![
        row("Single-Query ETL (§6.2)", "EdgeWise", "G1", 1750.0, &m[0], &m[1]),
        row("Single-Query VS (§6.3)", "OS", "G1,G2", 2000.0, &m[2], &m[3]),
        row(
            "Multi-Query SYN + blocking (§6.4)",
            "Haren-50ms",
            "G3",
            1750.0,
            &m[4],
            &m[5],
        ),
        row("Single-Query LR (§6.3/§6.5)", "OS", "G1,G4", 4_500.0, &m[6], &m[7]),
    ]
}

/// Renders the table as text.
pub fn render(rows: &[Table1Row]) -> String {
    let mut s = String::from("== table1 — Lachesis vs baselines (representative points) ==\n");
    s.push_str(&format!(
        "{:<36} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "experiment", "baseline", "goals", "rate", "tp gain %", "lat ratio", "e2e ratio"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<36} {:>12} {:>8} {:>10.0} {:>10.1} {:>10.1} {:>10.1}\n",
            r.experiment, r.baseline, r.goals, r.rate, r.throughput_gain_pct, r.latency_ratio, r.e2e_ratio
        ));
    }
    s
}

/// The table as a JSON array (the `table1.json` result format).
pub fn to_json(rows: &[Table1Row]) -> crate::json::Json {
    use crate::json::Json;
    Json::Arr(
        rows.iter()
            .map(|r| {
                Json::obj(vec![
                    ("experiment", Json::Str(r.experiment.clone())),
                    ("baseline", Json::Str(r.baseline.clone())),
                    ("goals", Json::Str(r.goals.clone())),
                    ("rate", Json::Num(r.rate)),
                    ("throughput_gain_pct", Json::Num(r.throughput_gain_pct)),
                    ("latency_ratio", Json::Num(r.latency_ratio)),
                    ("e2e_ratio", Json::Num(r.e2e_ratio)),
                ])
            })
            .collect(),
    )
}
