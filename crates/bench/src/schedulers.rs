//! Scheduler configurations compared across the experiments, and the
//! single-node point runner shared by most figures.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    CombinedTranslator, CpuQuotaTranslator, CpuSharesTranslator, DeadlinePolicy, FcfsPolicy,
    HighestRatePolicy, LachesisBuilder, NiceTranslator, Policy, QueueSizePolicy, RandomPolicy,
    Scope, StoreDriver, Translator,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{
    deploy, BlockingConfig, EngineConfig, Execution, LogicalGraph, Placement, RunningQuery,
    SpeKind,
};
use ulss::{edgewise_execution, haren_execution_with_period, HarenPolicy};

use crate::harness::{new_store, run_trial, Distributions, Measured, RunConfig};

/// The scheduling policies Lachesis (and Haren) can run in experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Queue Size.
    Qs,
    /// First-Come-First-Serve.
    Fcfs,
    /// Highest Rate.
    Hr,
}

impl PolicyChoice {
    /// Upper-case label used in figure series.
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::Qs => "QS",
            PolicyChoice::Fcfs => "FCFS",
            PolicyChoice::Hr => "HR",
        }
    }

    /// The Haren equivalent.
    pub fn haren(self) -> HarenPolicy {
        match self {
            PolicyChoice::Qs => HarenPolicy::QueueSize,
            PolicyChoice::Fcfs => HarenPolicy::Fcfs,
            PolicyChoice::Hr => HarenPolicy::HighestRate,
        }
    }
}

/// Lachesis translator selection (paper §5.3 + §8 extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslatorChoice {
    /// Thread `nice`.
    Nice,
    /// cgroup `cpu.shares`, one group per operator.
    Shares,
    /// cgroup per query + `nice` per operator (§6.6).
    Combined,
    /// cgroup CPU quotas, one group per operator (§8 extension).
    Quota,
}

/// A scheduler under evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Sched {
    /// Default OS (CFS) scheduling.
    Os,
    /// Lachesis with the RANDOM control policy (nice translator).
    Random,
    /// Lachesis with a policy and translator.
    Lachesis(PolicyChoice, TranslatorChoice),
    /// The EdgeWise UL-SS baseline.
    EdgeWise,
    /// The Haren UL-SS baseline with a policy and scheduling period.
    Haren(PolicyChoice, SimDuration),
}

impl Sched {
    /// Series label for figures.
    pub fn label(&self) -> String {
        match self {
            Sched::Os => "OS".into(),
            Sched::Random => "RANDOM".into(),
            Sched::Lachesis(p, _) => format!("LACHESIS-{}", p.label()),
            Sched::EdgeWise => "EDGEWISE".into(),
            Sched::Haren(p, period) => {
                format!("HAREN-{}-{}", p.label(), period.as_millis_f64() as u64)
            }
        }
    }

    /// Whether this scheduler replaces the engine's execution model
    /// (UL-SS run inside the engine as worker pools).
    pub fn is_ulss(&self) -> bool {
        matches!(self, Sched::EdgeWise | Sched::Haren(..))
    }
}

/// Everything needed to run one (scheduler, rate) point on one node.
pub struct PointSpec {
    /// Builds the workload for a given (rate, seed).
    pub graph: Box<dyn Fn(f64, u64) -> LogicalGraph>,
    /// Engine personality (Storm/Flink/Liebre).
    pub engine: SpeKind,
    /// The scheduler under test.
    pub sched: Sched,
    /// Offered rate in tuples/s.
    pub rate: f64,
    /// Seed for workload generation.
    pub seed: u64,
    /// Phase durations and goal selection.
    pub cfg: RunConfig,
    /// Optional blocking-I/O injection (Fig. 16).
    pub blocking: Option<BlockingConfig>,
    /// Operator topology for Haren (pool indices), where needed.
    pub downstream: Vec<Vec<usize>>,
}

impl std::fmt::Debug for PointSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PointSpec")
            .field("engine", &self.engine)
            .field("sched", &self.sched)
            .field("rate", &self.rate)
            .field("seed", &self.seed)
            .finish_non_exhaustive()
    }
}

fn engine_config(kind: SpeKind) -> EngineConfig {
    match kind {
        SpeKind::Storm => EngineConfig::storm(),
        SpeKind::Flink => EngineConfig::flink(),
        SpeKind::Liebre => EngineConfig::liebre(),
    }
}

/// Attaches a Lachesis instance scheduling all given queries of one SPE,
/// with the paper's Graphite-bound 1 s period.
pub fn attach_lachesis(
    kernel: &mut Kernel,
    kind: SpeKind,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    policy: PolicyChoice,
    translator: TranslatorChoice,
    seed: u64,
) {
    let _ = seed;
    attach_lachesis_with_period(
        kernel,
        kind,
        queries,
        store,
        policy,
        translator,
        SimDuration::from_secs(1),
    )
}

/// Like [`attach_lachesis`] but with an explicit scheduling period (used
/// by the period-ablation experiment).
pub fn attach_lachesis_with_period(
    kernel: &mut Kernel,
    kind: SpeKind,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    policy: PolicyChoice,
    translator: TranslatorChoice,
    period: SimDuration,
) {
    let driver = StoreDriver::new(kind, queries, store);
    let boxed_policy: Box<dyn Policy> = match policy {
        PolicyChoice::Qs => Box::new(QueueSizePolicy::new(period)),
        PolicyChoice::Fcfs => Box::new(FcfsPolicy::new(period)),
        PolicyChoice::Hr => Box::new(HighestRatePolicy::new(period)),
    };
    let label = policy.label().to_lowercase();
    let boxed_translator: Box<dyn Translator> = match translator {
        TranslatorChoice::Nice => Box::new(NiceTranslator::new()),
        TranslatorChoice::Shares => Box::new(CpuSharesTranslator::new(&label)),
        TranslatorChoice::Combined => Box::new(CombinedTranslator::new(&label)),
        TranslatorChoice::Quota => Box::new(CpuQuotaTranslator::new(&label)),
    };
    LachesisBuilder::new()
        .driver(driver)
        .policy(0, Scope::AllQueries, boxed_policy, boxed_translator)
        .build()
        .start(kernel);
}

/// Attaches Lachesis running the DEADLINE policy with per-query
/// end-to-end latency targets (`(query index, target seconds)` pairs;
/// queries without an entry use `default_target_s`), steering through
/// the ordinary nice translator at the 1 s Graphite-bound period.
pub fn attach_deadline(
    kernel: &mut Kernel,
    kind: SpeKind,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    targets: &[(usize, f64)],
    default_target_s: f64,
) {
    let driver = StoreDriver::new(kind, queries, store);
    let mut policy = DeadlinePolicy::new(SimDuration::from_secs(1), default_target_s);
    for &(q, t) in targets {
        policy = policy.with_target(q, t);
    }
    LachesisBuilder::new()
        .driver(driver)
        .policy(0, Scope::AllQueries, policy, NiceTranslator::new())
        .build()
        .start(kernel);
}

/// Attaches the RANDOM control policy via nice.
pub fn attach_random(
    kernel: &mut Kernel,
    kind: SpeKind,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    seed: u64,
) {
    let driver = StoreDriver::new(kind, queries, store);
    LachesisBuilder::new()
        .driver(driver)
        .policy(
            0,
            Scope::AllQueries,
            RandomPolicy::new(SimDuration::from_secs(1), seed),
            NiceTranslator::new(),
        )
        .build()
        .start(kernel);
}

/// Tracing options for [`run_traced_point`].
#[derive(Debug, Clone)]
pub struct TraceOpts {
    /// Ring-buffer capacity; `None` keeps every record.
    pub ring: Option<usize>,
    /// Label for the dump (summary header, Perfetto process names).
    pub label: String,
}

/// Runs one (scheduler, rate) point on one Odroid-class node and returns
/// the measurements.
pub fn run_point(spec: PointSpec) -> (Measured, Distributions) {
    let (m, d, _) = run_point_inner(spec, None);
    (m, d)
}

/// Like [`run_point`] but with sim-time tracing installed across all
/// layers (kernel switches, operator batch spans, middleware rounds) and
/// the per-node utilization/runqueue counter samplers running. Returns
/// the captured [`TraceDump`](crate::trace::TraceDump) alongside the
/// measurements (which may differ slightly from an untraced run: the
/// samplers add kernel callbacks).
pub fn run_traced_point(
    spec: PointSpec,
    trace: TraceOpts,
) -> (Measured, Distributions, crate::trace::TraceDump) {
    let (m, d, dump) = run_point_inner(spec, Some(trace));
    (m, d, dump.expect("traced run produces a dump"))
}

fn run_point_inner(
    spec: PointSpec,
    trace: Option<TraceOpts>,
) -> (Measured, Distributions, Option<crate::trace::TraceDump>) {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    // The sink must exist before `deploy` so operator bodies pick it up.
    let handle = trace.as_ref().map(|t| kernel.install_tracing(t.ring));
    let store = new_store();
    let graph = (spec.graph)(spec.rate, spec.seed);

    let mut config = engine_config(spec.engine);
    config.blocking = spec.blocking;
    config.seed = spec.seed;
    let workers = 4; // one per Odroid big core
    config.execution = match &spec.sched {
        Sched::EdgeWise => edgewise_execution(workers),
        Sched::Haren(policy, period) => haren_execution_with_period(
            workers,
            policy.haren(),
            *period,
            spec.downstream.clone(),
        ),
        _ => Execution::ThreadPerOp,
    };

    let query = deploy(
        &mut kernel,
        graph,
        config,
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");

    match &spec.sched {
        Sched::Os | Sched::EdgeWise | Sched::Haren(..) => {}
        Sched::Random => attach_random(
            &mut kernel,
            spec.engine,
            vec![query.clone()],
            Rc::clone(&store),
            spec.seed,
        ),
        Sched::Lachesis(p, t) => attach_lachesis(
            &mut kernel,
            spec.engine,
            vec![query.clone()],
            Rc::clone(&store),
            *p,
            *t,
            spec.seed,
        ),
    }

    if let Some(h) = &handle {
        crate::trace::install_counter_samplers(&mut kernel, h);
    }
    let (m, d) = run_trial(&mut kernel, &[node], &[query], &spec.cfg);
    let dump = trace.map(|t| {
        crate::trace::capture(&kernel, handle.as_ref().expect("handle installed"), &t.label)
    });
    (m, d, dump)
}
