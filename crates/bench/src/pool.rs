//! Persistent worker pool for parallel trials and pinned shard workers.
//!
//! Two pieces live here:
//!
//! * [`parallel_map`] — the experiment runner's fork/join primitive. Each
//!   trial constructs its entire `Kernel`/`Rc` object graph *inside* the
//!   worker closure, so nothing non-`Send` ever crosses a thread boundary —
//!   only the (plain-data) inputs and outputs do. Results are returned in
//!   input order regardless of completion order or worker count, which keeps
//!   every downstream artifact (figures, JSON files) byte-identical between
//!   `--jobs 1` and `--jobs N`. Since PR 8 the helpers run on a persistent
//!   process-wide pool instead of freshly spawned scoped threads: the cluster
//!   layer reaches an epoch barrier every few simulated milliseconds, and at
//!   thousands of joins per trial the per-call `thread::spawn` cost would
//!   dominate the parallel win.
//!
//! * [`ShardSet`] — pinned persistent workers for the sharded cluster
//!   simulation. A `Kernel` is `!Send` (its object graph is `Rc`/`RefCell`
//!   all the way down), so a shard must live its whole life on one OS
//!   thread. `ShardSet` builds each shard *on* its worker thread from a
//!   `Send` factory closure and then ships `Send` job closures to it each
//!   epoch; only plain-data inputs and outputs cross threads, exactly like
//!   `parallel_map`.
//!
//! # Deadlock freedom of the persistent pool
//!
//! The caller of `parallel_map` always participates in draining its own
//! claim queue, so a map completes even if the pool never gets around to
//! running a single one of its helper tasks. Helper tasks never block on
//! other tasks: a nested `parallel_map` issued from inside a pool worker
//! runs inline (sequentially) on that worker, so every task submitted to the
//! pool terminates on its own. The FIFO task queue therefore always drains.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Condvar, Mutex, OnceLock};

/// The default worker count: the host's available cores.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

// ---------------------------------------------------------------------------
// The persistent process-wide helper pool.
// ---------------------------------------------------------------------------

/// A queued unit of work: a type-erased pointer to a `parallel_map` call's
/// shared state plus the monomorphized entry function that knows its real
/// type. Lifetime safety is the *caller's* obligation: `parallel_map` does
/// not return until every task it submitted has finished running, so the
/// pointed-to state outlives every use of the pointer.
struct Task {
    ptr: *const (),
    run: unsafe fn(*const ()),
}

// SAFETY: the pointee is a `Shared<I, T, F>` with `I: Send`, `T: Send`,
// `F: Sync` (enforced by `helper_entry`'s bounds at submission time), and is
// only accessed through `&Shared` from `helper_entry`.
unsafe impl Send for Task {}

struct PoolState {
    queue: VecDeque<Task>,
    /// Workers currently parked waiting for work.
    idle: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            idle: 0,
        }),
        work_ready: Condvar::new(),
    })
}

thread_local! {
    /// Set while a pool worker is running a task. A nested `parallel_map` on
    /// a worker runs inline rather than submitting (and then waiting on)
    /// tasks the pool may never get to — see the module docs.
    static ON_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Enqueues `tasks` and makes sure enough workers exist to pick them up.
/// Workers are spawned lazily and persist for the life of the process.
fn submit(tasks: Vec<Task>) {
    let p = pool();
    let spawn_count;
    {
        let mut st = p.state.lock().expect("pool state");
        let backlog = st.queue.len() + tasks.len();
        st.queue.extend(tasks);
        spawn_count = backlog.saturating_sub(st.idle);
        // Wake every parked worker that has something to do.
        p.work_ready.notify_all();
    }
    for _ in 0..spawn_count {
        std::thread::Builder::new()
            .name("bench-pool".into())
            .spawn(worker_main)
            .expect("spawn pool worker");
    }
}

fn worker_main() {
    let p = pool();
    ON_POOL_WORKER.with(|f| f.set(true));
    loop {
        let task = {
            let mut st = p.state.lock().expect("pool state");
            loop {
                if let Some(t) = st.queue.pop_front() {
                    break t;
                }
                st.idle += 1;
                st = p.work_ready.wait(st).expect("pool state");
                st.idle -= 1;
            }
        };
        // SAFETY: see `Task` — the submitting `parallel_map` call keeps the
        // pointee alive until this task reports completion.
        unsafe { (task.run)(task.ptr) };
    }
}

// ---------------------------------------------------------------------------
// parallel_map over the pool.
// ---------------------------------------------------------------------------

struct MapCtl<I> {
    /// Unclaimed inputs, in input order (claim order does not matter for
    /// determinism: outputs land in slots indexed by input position).
    queue: VecDeque<(usize, I)>,
    /// Inputs not yet finished (still queued or currently running).
    unfinished: usize,
    /// Helper tasks submitted to the pool that have not yet exited.
    helpers: usize,
    /// First panic payload observed in any worker, if any.
    panic: Option<Box<dyn Any + Send>>,
}

struct Shared<I, T, F> {
    ctl: Mutex<MapCtl<I>>,
    done: Condvar,
    slots: Vec<Mutex<Option<T>>>,
    f: F,
}

/// Claims and runs inputs until the queue is empty (or a panic aborted the
/// map). Runs on the caller *and* on every helper.
fn drain_map<I, T, F>(shared: &Shared<I, T, F>)
where
    F: Fn(I) -> T,
{
    loop {
        let claimed = {
            let mut ctl = shared.ctl.lock().expect("map ctl");
            if ctl.panic.is_some() {
                None
            } else {
                ctl.queue.pop_front()
            }
        };
        let Some((idx, input)) = claimed else { return };
        let result = catch_unwind(AssertUnwindSafe(|| (shared.f)(input)));
        let mut ctl = shared.ctl.lock().expect("map ctl");
        match result {
            Ok(out) => *shared.slots[idx].lock().expect("result slot") = Some(out),
            Err(payload) => {
                if ctl.panic.is_none() {
                    ctl.panic = Some(payload);
                }
                // Abandon unclaimed inputs so the map can complete.
                ctl.unfinished -= ctl.queue.len();
                ctl.queue.clear();
            }
        }
        ctl.unfinished -= 1;
        if ctl.unfinished == 0 {
            shared.done.notify_all();
        }
    }
}

/// The type-erased pool entry for one helper of one `parallel_map` call.
///
/// # Safety
///
/// `ptr` must point to a live `Shared<I, T, F>`; the submitting call keeps
/// it alive until `helpers` drops to zero, which this function signals last.
unsafe fn helper_entry<I, T, F>(ptr: *const ())
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let shared = &*(ptr as *const Shared<I, T, F>);
    drain_map(shared);
    let mut ctl = shared.ctl.lock().expect("map ctl");
    ctl.helpers -= 1;
    if ctl.helpers == 0 {
        shared.done.notify_all();
    }
}

/// Applies `f` to every input on up to `jobs` OS threads and returns the
/// outputs in input order.
///
/// With `jobs <= 1` (or a single input) everything runs inline on the
/// calling thread — the exact sequential path, with no pool overhead.
/// Helpers come from a persistent process-wide pool; the calling thread
/// always participates, so a map never waits on pool capacity to make
/// progress. Nested calls from inside a pool worker run inline.
///
/// # Panics
///
/// Propagates the first worker panic after the whole map has settled.
pub fn parallel_map<I, T, F>(jobs: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = jobs.max(1).min(inputs.len().max(1));
    if workers <= 1 || ON_POOL_WORKER.with(|fl| fl.get()) {
        return inputs.into_iter().map(f).collect();
    }
    let n = inputs.len();
    let helpers = workers - 1;
    let shared = Shared {
        ctl: Mutex::new(MapCtl {
            queue: inputs.into_iter().enumerate().collect(),
            unfinished: n,
            helpers,
            panic: None,
        }),
        done: Condvar::new(),
        slots: (0..n).map(|_| Mutex::new(None)).collect(),
        f,
    };
    let ptr = &shared as *const Shared<I, T, F> as *const ();
    submit(
        (0..helpers)
            .map(|_| Task {
                ptr,
                run: helper_entry::<I, T, F>,
            })
            .collect(),
    );
    drain_map(&shared);
    // Wait until every input has finished *and* every helper has exited:
    // helpers hold a raw pointer to `shared`, so both conditions gate the
    // borrow's end.
    {
        let mut ctl = shared.ctl.lock().expect("map ctl");
        while ctl.unfinished > 0 || ctl.helpers > 0 {
            ctl = shared.done.wait(ctl).expect("map ctl");
        }
    }
    let ctl = shared.ctl.into_inner().expect("map ctl");
    if let Some(payload) = ctl.panic {
        resume_unwind(payload);
    }
    shared
        .slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("worker finished every claimed trial")
        })
        .collect()
}

// ---------------------------------------------------------------------------
// ShardSet: pinned persistent workers owning !Send shard state.
// ---------------------------------------------------------------------------

/// A boxed job shipped to the worker owning shard `T`. The closure itself is
/// `Send` (it captures only plain data); `T` appears only as a parameter, so
/// `T: !Send` is fine.
type ShardJob<T> = Box<dyn FnOnce(&mut T) -> Box<dyn Any + Send> + Send>;
/// A closure that constructs one shard's state on its pinned worker.
type ShardBuilder<T> = Box<dyn FnOnce() -> T + Send>;
/// One [`ShardSet::run`] job: runs against one shard's state, returns `O`.
pub type ShardSetJob<T, O> = Box<dyn FnOnce(&mut T) -> O + Send>;

enum ShardMsg<T> {
    /// `(global shard index, job)` pairs for this worker, in shard order.
    Step(Vec<(usize, ShardJob<T>)>),
    Shutdown,
}

enum ShardReply {
    /// `(global shard index, job output)` in the order the jobs ran.
    Done(Vec<(usize, Box<dyn Any + Send>)>),
    /// A job (or a builder) panicked; the payload is re-raised on the caller.
    Panicked(Box<dyn Any + Send>),
}

struct ShardWorker<T> {
    tx: mpsc::Sender<ShardMsg<T>>,
    rx: mpsc::Receiver<ShardReply>,
    join: Option<std::thread::JoinHandle<()>>,
}

enum ShardMode<T> {
    /// `threads <= 1`: shards live on the calling thread and jobs run
    /// sequentially in shard order — the exact single-threaded semantics.
    Inline(Vec<T>),
    /// Shard `i` lives on worker `i % threads` for the set's whole life.
    Threaded(Vec<ShardWorker<T>>),
}

/// A fixed set of `!Send` shard states pinned to persistent worker threads.
///
/// Shards are built *on* their worker from `Send` factory closures and never
/// move; each [`ShardSet::run`] call ships one `Send` job per shard and
/// returns the outputs in shard order, so results are identical for any
/// thread count (including the inline `threads <= 1` mode).
pub struct ShardSet<T> {
    mode: ShardMode<T>,
    shards: usize,
    threads: usize,
}

impl<T> std::fmt::Debug for ShardSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.shards)
            .field("threads", &self.threads)
            .finish()
    }
}

impl<T: 'static> ShardSet<T> {
    /// Builds `builders.len()` shards distributed over `threads` pinned
    /// workers (`threads <= 1` keeps everything on the calling thread).
    ///
    /// # Panics
    ///
    /// Re-raises a builder panic on the caller.
    pub fn new(threads: usize, builders: Vec<Box<dyn FnOnce() -> T + Send>>) -> ShardSet<T> {
        let shards = builders.len();
        let threads = threads.max(1).min(shards.max(1));
        if threads <= 1 {
            return ShardSet {
                mode: ShardMode::Inline(builders.into_iter().map(|b| b()).collect()),
                shards,
                threads: 1,
            };
        }
        let mut per_worker: Vec<Vec<(usize, ShardBuilder<T>)>> =
            (0..threads).map(|_| Vec::new()).collect();
        for (idx, b) in builders.into_iter().enumerate() {
            per_worker[idx % threads].push((idx, b));
        }
        let workers: Vec<ShardWorker<T>> = per_worker
            .into_iter()
            .enumerate()
            .map(|(w, builders)| {
                let (tx, job_rx) = mpsc::channel::<ShardMsg<T>>();
                let (reply_tx, rx) = mpsc::channel::<ShardReply>();
                let join = std::thread::Builder::new()
                    .name(format!("shard-worker-{w}"))
                    .spawn(move || shard_worker_main(builders, job_rx, reply_tx))
                    .expect("spawn shard worker");
                ShardWorker {
                    tx,
                    rx,
                    join: Some(join),
                }
            })
            .collect();
        // Builders run on first Step; confirm they succeed up front by
        // running an empty step (which forces construction).
        let mut set = ShardSet {
            mode: ShardMode::Threaded(workers),
            shards,
            threads,
        };
        let _: Vec<()> = set.run((0..shards).map(|_| noop_job::<T>()).collect());
        set
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Number of worker threads actually in use (1 = inline mode).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs one job per shard (jobs\[i\] on shard i) and returns the outputs
    /// in shard order. Jobs on distinct workers run in parallel.
    ///
    /// # Panics
    ///
    /// Panics if `jobs.len() != self.shards()`; re-raises job panics.
    pub fn run<O: Send + 'static>(&mut self, jobs: Vec<ShardSetJob<T, O>>) -> Vec<O> {
        assert_eq!(jobs.len(), self.shards, "one job per shard");
        match &mut self.mode {
            ShardMode::Inline(states) => states
                .iter_mut()
                .zip(jobs)
                .map(|(state, job)| job(state))
                .collect(),
            ShardMode::Threaded(workers) => {
                let threads = workers.len();
                let mut per_worker: Vec<Vec<(usize, ShardJob<T>)>> =
                    (0..threads).map(|_| Vec::new()).collect();
                for (idx, job) in jobs.into_iter().enumerate() {
                    let erased: ShardJob<T> =
                        Box::new(move |state| Box::new(job(state)) as Box<dyn Any + Send>);
                    per_worker[idx % threads].push((idx, erased));
                }
                for (worker, batch) in workers.iter().zip(per_worker) {
                    worker
                        .tx
                        .send(ShardMsg::Step(batch))
                        .expect("shard worker alive");
                }
                let mut outs: Vec<Option<O>> = (0..self.shards).map(|_| None).collect();
                let mut panic: Option<Box<dyn Any + Send>> = None;
                for worker in workers.iter() {
                    match worker.rx.recv().expect("shard worker reply") {
                        ShardReply::Done(results) => {
                            for (idx, boxed) in results {
                                outs[idx] = Some(
                                    *boxed.downcast::<O>().expect("shard job output type"),
                                );
                            }
                        }
                        ShardReply::Panicked(payload) => {
                            if panic.is_none() {
                                panic = Some(payload);
                            }
                        }
                    }
                }
                if let Some(payload) = panic {
                    resume_unwind(payload);
                }
                outs.into_iter()
                    .map(|o| o.expect("every shard produced an output"))
                    .collect()
            }
        }
    }

    /// The inline shard states, if this set runs in inline mode.
    pub fn inline_states(&mut self) -> Option<&mut [T]> {
        match &mut self.mode {
            ShardMode::Inline(states) => Some(states),
            ShardMode::Threaded(_) => None,
        }
    }
}

fn noop_job<T: 'static>() -> Box<dyn FnOnce(&mut T) + Send> {
    Box::new(|_| ())
}

impl<T> Drop for ShardSet<T> {
    fn drop(&mut self) {
        if let ShardMode::Threaded(workers) = &mut self.mode {
            for worker in workers.iter() {
                let _ = worker.tx.send(ShardMsg::Shutdown);
            }
            for worker in workers.iter_mut() {
                if let Some(join) = worker.join.take() {
                    let _ = join.join();
                }
            }
        }
    }
}

fn shard_worker_main<T>(
    builders: Vec<(usize, Box<dyn FnOnce() -> T + Send>)>,
    rx: mpsc::Receiver<ShardMsg<T>>,
    tx: mpsc::Sender<ShardReply>,
) {
    // Shards are built lazily on the first step so a builder panic is
    // reported through the normal reply path.
    let mut builders = Some(builders);
    let mut shards: Vec<(usize, T)> = Vec::new();
    loop {
        match rx.recv() {
            Ok(ShardMsg::Step(jobs)) => {
                let reply = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(pending) = builders.take() {
                        shards = pending.into_iter().map(|(i, b)| (i, b())).collect();
                    }
                    let states = &mut shards;
                    let mut results = Vec::with_capacity(jobs.len());
                    for (idx, job) in jobs {
                        let (_, state) = states
                            .iter_mut()
                            .find(|(i, _)| *i == idx)
                            .expect("job routed to owning worker");
                        results.push((idx, job(state)));
                    }
                    results
                }));
                match reply {
                    Ok(results) => {
                        if tx.send(ShardReply::Done(results)).is_err() {
                            return;
                        }
                    }
                    Err(payload) => {
                        if tx.send(ShardReply::Panicked(payload)).is_err() {
                            return;
                        }
                    }
                }
            }
            Ok(ShardMsg::Shutdown) | Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(8, inputs.clone(), |x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline() {
        let out = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_inputs() {
        let out = parallel_map(64, vec![5], |x: u32| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn repeated_maps_reuse_the_pool() {
        // Thousands of joins — the epoch-barrier pattern. This is a smoke
        // test that the persistent pool neither deadlocks nor leaks workers.
        for round in 0..2_000u64 {
            let out = parallel_map(4, vec![round, round + 1], |x| x + 1);
            assert_eq!(out, vec![round + 1, round + 2]);
        }
    }

    #[test]
    fn nested_maps_complete() {
        let out = parallel_map(4, (0..8u64).collect(), |x| {
            parallel_map(4, (0..4u64).collect(), |y| y * x)
                .into_iter()
                .sum::<u64>()
        });
        assert_eq!(out, (0..8u64).map(|x| 6 * x).collect::<Vec<_>>());
    }

    #[test]
    fn map_panic_propagates() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            parallel_map(4, (0..16u64).collect(), |x| {
                if x == 7 {
                    panic!("trial 7 failed");
                }
                x
            })
        }));
        assert!(result.is_err());
        // The pool must still be usable afterwards.
        let out = parallel_map(4, vec![1u64, 2], |x| x);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn shard_set_inline_matches_threaded() {
        use std::rc::Rc;
        // Shard state is deliberately !Send (Rc) to mirror Kernel.
        let build = |i: usize| -> Box<dyn FnOnce() -> Rc<std::cell::RefCell<u64>> + Send> {
            Box::new(move || Rc::new(std::cell::RefCell::new(i as u64 * 100)))
        };
        let mut results = Vec::new();
        for threads in [1usize, 4] {
            let mut set = ShardSet::new(threads, (0..8).map(build).collect());
            let mut trace: Vec<Vec<u64>> = Vec::new();
            for step in 0..5u64 {
                let outs = set.run(
                    (0..8)
                        .map(|_| {
                            Box::new(move |state: &mut Rc<std::cell::RefCell<u64>>| {
                                *state.borrow_mut() += step;
                                *state.borrow()
                            })
                                as Box<dyn FnOnce(&mut _) -> u64 + Send>
                        })
                        .collect(),
                );
                trace.push(outs);
            }
            results.push(trace);
        }
        assert_eq!(results[0], results[1]);
    }

    #[test]
    fn shard_set_panic_propagates() {
        let mut set: ShardSet<u64> =
            ShardSet::new(4, (0..4).map(|i| -> Box<dyn FnOnce() -> u64 + Send> {
                Box::new(move || i as u64)
            }).collect());
        let result = catch_unwind(AssertUnwindSafe(|| {
            set.run(
                (0..4)
                    .map(|i| {
                        Box::new(move |_: &mut u64| {
                            if i == 2 {
                                panic!("shard job failed");
                            }
                        }) as Box<dyn FnOnce(&mut u64) + Send>
                    })
                    .collect(),
            )
        }));
        assert!(result.is_err());
    }
}
