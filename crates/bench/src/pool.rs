//! A minimal scoped thread pool for running independent trials in parallel.
//!
//! Each trial constructs its entire `Kernel`/`Rc` object graph *inside* the
//! worker closure, so nothing non-`Send` ever crosses a thread boundary —
//! only the (plain-data) inputs and outputs do. Results are returned in
//! input order regardless of completion order or worker count, which keeps
//! every downstream artifact (figures, JSON files) byte-identical between
//! `--jobs 1` and `--jobs N`.

use std::sync::Mutex;

/// The default worker count: the host's available cores.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Applies `f` to every input on up to `jobs` OS threads and returns the
/// outputs in input order.
///
/// With `jobs <= 1` (or a single input) everything runs inline on the
/// calling thread — the exact sequential path, with no pool overhead.
///
/// # Panics
///
/// Propagates the first worker panic after all threads have joined.
pub fn parallel_map<I, T, F>(jobs: usize, inputs: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let workers = jobs.max(1).min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
    let queue = Mutex::new(inputs.into_iter().enumerate());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                // Claim the next unstarted input; drop the lock before
                // running it so workers claim strictly one at a time.
                let Some((idx, input)) = queue.lock().expect("claim queue").next() else {
                    return;
                };
                let out = f(input);
                *slots[idx].lock().expect("result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot")
                .expect("worker finished every claimed trial")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = parallel_map(8, inputs.clone(), |x| x * 3);
        assert_eq!(out, inputs.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn jobs_one_runs_inline() {
        let out = parallel_map(1, vec![1, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = parallel_map(4, Vec::<u32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn more_jobs_than_inputs() {
        let out = parallel_map(64, vec![5], |x: u32| x * 2);
        assert_eq!(out, vec![10]);
    }
}
