//! # bench — experiment harness reproducing every table and figure
//!
//! One module per experiment group; the `repro` binary dispatches on
//! experiment ids (`fig5` … `fig18`, `table1`). Results are printed as
//! aligned text tables and saved as JSON under `results/`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod harness;
pub mod json;
pub mod pool;
pub mod report;
pub mod schedulers;
pub mod svg;
pub mod trace;

/// Experiment groups, one per paper section.
pub mod experiments {
    pub mod ablation;
    pub mod chaos;
    pub mod churn;
    pub mod deadline;
    pub mod multi_query;
    pub mod multi_spe;
    pub mod rack;
    pub mod scale_out;
    pub mod single_query;
    pub mod soak;
    pub mod table1;
}

use std::path::PathBuf;

/// Global experiment options (from the `repro` CLI).
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Fewer rates, shorter runs, one repetition.
    pub quick: bool,
    /// Where JSON results go.
    pub out_dir: PathBuf,
    /// Repetitions (distinct seeds) averaged per point.
    pub reps: usize,
    /// Worker threads for independent trials (`--jobs`); results are
    /// byte-identical for any value.
    pub jobs: usize,
    /// Worker threads driving cluster shards (`--shard-threads`); results
    /// are byte-identical for any value (`<= 1` runs shards inline).
    pub shard_threads: usize,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            quick: false,
            out_dir: PathBuf::from("results"),
            reps: 3,
            jobs: pool::default_jobs(),
            shard_threads: pool::default_jobs(),
        }
    }
}

impl ExpOptions {
    /// Quick-mode options (smoke tests).
    pub fn quick() -> Self {
        ExpOptions {
            quick: true,
            reps: 1,
            ..ExpOptions::default()
        }
    }
}
