//! Minimal SVG line-chart rendering for the reproduced figures — no
//! external dependencies, just enough to eyeball the shapes against the
//! paper's plots. Each figure renders one chart per metric (throughput,
//! latency, end-to-end latency, policy goal), latency axes in log scale
//! like the paper.

use std::fmt::Write as _;

use crate::harness::Measured;
use crate::report::Figure;

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 400.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 160.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;

/// Distinguishable series colors (cycled).
const COLORS: [&str; 9] = [
    "#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f",
    "#17becf",
];

#[derive(Debug, Clone, Copy)]
struct Scale {
    min: f64,
    max: f64,
    log: bool,
    pixel_min: f64,
    pixel_max: f64,
}

impl Scale {
    fn project(&self, v: f64) -> f64 {
        let (v, min, max) = if self.log {
            (
                v.max(1e-12).log10(),
                self.min.max(1e-12).log10(),
                self.max.max(1e-9).log10(),
            )
        } else {
            (v, self.min, self.max)
        };
        let span = (max - min).abs().max(1e-12);
        self.pixel_min + (v - min) / span * (self.pixel_max - self.pixel_min)
    }

    fn ticks(&self) -> Vec<f64> {
        if self.log {
            let lo = self.min.max(1e-12).log10().floor() as i32;
            let hi = self.max.max(1e-9).log10().ceil() as i32;
            (lo..=hi).map(|e| 10f64.powi(e)).collect()
        } else {
            let span = (self.max - self.min).abs().max(1e-12);
            let step = 10f64.powf(span.log10().floor());
            let step = if span / step > 5.0 { step * 2.0 } else { step / 2.0 };
            let mut t = (self.min / step).floor() * step;
            let mut out = Vec::new();
            while t <= self.max + step * 0.5 {
                if t >= self.min - step * 0.5 {
                    out.push(t);
                }
                t += step;
            }
            out
        }
    }
}

fn fmt_tick(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{:.0}k", v / 1000.0)
    } else if v.abs() >= 1.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.0e}")
    }
}

/// Renders one metric of a figure as an SVG line chart.
///
/// `log_y` puts the y-axis in log scale (used for latencies, like the
/// paper's plots). Returns `None` if there is nothing to plot.
pub fn render_chart(
    fig: &Figure,
    metric_name: &str,
    get: impl Fn(&Measured) -> f64,
    log_y: bool,
) -> Option<String> {
    let mut xs: Vec<f64> = Vec::new();
    let mut ys: Vec<f64> = Vec::new();
    for s in &fig.series {
        for p in &s.points {
            xs.push(p.x);
            let v = get(&p.m);
            if v.is_finite() && (!log_y || v > 0.0) {
                ys.push(v);
            }
        }
    }
    if xs.is_empty() || ys.is_empty() {
        return None;
    }
    let xmin = xs.iter().cloned().fold(f64::INFINITY, f64::min);
    let xmax = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let ymin = ys.iter().cloned().fold(f64::INFINITY, f64::min);
    let ymax = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let sx = Scale {
        min: xmin,
        max: if xmax > xmin { xmax } else { xmin + 1.0 },
        log: false,
        pixel_min: MARGIN_L,
        pixel_max: WIDTH - MARGIN_R,
    };
    let sy = Scale {
        min: if log_y { ymin } else { 0f64.min(ymin) },
        max: if ymax > ymin { ymax } else { ymin + 1.0 },
        log: log_y,
        pixel_min: HEIGHT - MARGIN_B,
        pixel_max: MARGIN_T,
    };

    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" font-family="sans-serif" font-size="11">"#
    );
    let _ = write!(
        svg,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    // Title and axis labels.
    let _ = write!(
        svg,
        r#"<text x="{}" y="20" text-anchor="middle" font-size="13">{} — {}</text>"#,
        WIDTH / 2.0,
        xml_escape(&fig.id),
        xml_escape(metric_name)
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
        (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
        HEIGHT - 10.0,
        xml_escape(&fig.x_label)
    );

    // Gridlines + ticks.
    for t in sy.ticks() {
        let y = sy.project(t);
        let _ = write!(
            svg,
            r#"<line x1="{MARGIN_L}" y1="{y:.1}" x2="{:.1}" y2="{y:.1}" stroke="lightgray"/>"#,
            WIDTH - MARGIN_R
        );
        let _ = write!(
            svg,
            r#"<text x="{:.1}" y="{:.1}" text-anchor="end">{}</text>"#,
            MARGIN_L - 5.0,
            y + 4.0,
            fmt_tick(t)
        );
    }
    for t in sx.ticks() {
        let x = sx.project(t);
        let _ = write!(
            svg,
            r#"<text x="{x:.1}" y="{:.1}" text-anchor="middle">{}</text>"#,
            HEIGHT - MARGIN_B + 15.0,
            fmt_tick(t)
        );
    }
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{MARGIN_T}" x2="{MARGIN_L}" y2="{:.1}" stroke="black"/>"#,
        HEIGHT - MARGIN_B
    );
    let _ = write!(
        svg,
        r#"<line x1="{MARGIN_L}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black"/>"#,
        HEIGHT - MARGIN_B,
        WIDTH - MARGIN_R,
        HEIGHT - MARGIN_B
    );

    // Series.
    for (i, s) in fig.series.iter().enumerate() {
        let color = COLORS[i % COLORS.len()];
        let mut path = String::new();
        let mut first = true;
        for p in &s.points {
            let v = get(&p.m);
            if !v.is_finite() || (log_y && v <= 0.0) {
                continue;
            }
            let (x, y) = (sx.project(p.x), sy.project(v));
            let _ = write!(path, "{}{x:.1},{y:.1} ", if first { "M" } else { "L" });
            first = false;
            let _ = write!(
                svg,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.5" fill="{color}"/>"#
            );
        }
        if !path.is_empty() {
            let _ = write!(
                svg,
                r#"<path d="{}" fill="none" stroke="{color}" stroke-width="1.5"/>"#,
                path.trim_end()
            );
        }
        // Legend entry.
        let ly = MARGIN_T + 14.0 * i as f64;
        let lx = WIDTH - MARGIN_R + 10.0;
        let _ = write!(
            svg,
            r#"<line x1="{lx}" y1="{ly}" x2="{}" y2="{ly}" stroke="{color}" stroke-width="2"/>"#,
            lx + 16.0
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}">{}</text>"#,
            lx + 20.0,
            ly + 4.0,
            xml_escape(&s.label)
        );
    }
    svg.push_str("</svg>");
    Some(svg)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;").replace('<', "&lt;").replace('>', "&gt;")
}

/// Writes the standard chart set (throughput, mean + tail latency, e2e,
/// goal) for a figure into `dir` as `{fig.id}_{metric}.svg`. Tail charts
/// (`latency_p99`, `e2e_p99`) are skipped when a figure carries no
/// percentile data (all zero), and the `slo_miss` chart only renders when
/// at least one point has an SLO target.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn save_charts(fig: &Figure, dir: &std::path::Path) -> std::io::Result<Vec<String>> {
    std::fs::create_dir_all(dir)?;
    #[allow(clippy::type_complexity)]
    let charts: [(&str, fn(&Measured) -> f64, bool); 6] = [
        ("throughput", |m| m.throughput_tps, false),
        ("latency", |m| m.latency_mean_s, true),
        ("latency_p99", |m| m.latency_p.1, true),
        ("e2e", |m| m.e2e_mean_s, true),
        ("e2e_p99", |m| m.e2e_p.1, true),
        ("goal", |m| m.goal, true),
    ];
    let has_slo = fig
        .series
        .iter()
        .any(|s| s.points.iter().any(|p| p.m.slo_target_s > 0.0));
    let mut written = Vec::new();
    let mut save = |name: &str, svg: Option<String>| -> std::io::Result<()> {
        if let Some(svg) = svg {
            let file = format!("{}_{}.svg", fig.id, name);
            std::fs::write(dir.join(&file), svg)?;
            written.push(file);
        }
        Ok(())
    };
    for (name, get, log_y) in charts {
        save(name, render_chart(fig, name, get, log_y))?;
    }
    if has_slo {
        save(
            "slo_miss",
            render_chart(fig, "slo_miss", |m| m.slo_miss_rate, false),
        )?;
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{Series, SweepPoint};

    fn figure() -> Figure {
        let mut fig = Figure::new("figX", "test", "rate (t/s)");
        for (label, base) in [("OS", 1.0), ("LACHESIS", 2.0)] {
            fig.series.push(Series {
                label: label.into(),
                points: (1..=5)
                    .map(|i| SweepPoint {
                        x: i as f64 * 1000.0,
                        m: Measured {
                            offered_tps: i as f64 * 1000.0,
                            throughput_tps: base * i as f64 * 900.0,
                            latency_mean_s: 0.001 * base * i as f64,
                            latency_p: (0.0, 0.0, 0.0),
                            e2e_mean_s: 0.002 * base * i as f64,
                            e2e_p: (0.0, 0.0, 0.0),
                            slo_target_s: 0.0,
                            slo_miss_rate: 0.0,
                            goal: base,
                            queue_samples: vec![],
                            utilization: 0.5,
                            ctx_switches_per_s: 0.0,
                            egress_tps: 0.0,
                        },
                    })
                    .collect(),
            });
        }
        fig
    }

    #[test]
    fn renders_valid_svg_with_all_series() {
        let fig = figure();
        let svg = render_chart(&fig, "throughput", |m| m.throughput_tps, false).unwrap();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("OS"));
        assert!(svg.contains("LACHESIS"));
        assert!(svg.matches("<path").count() == 2, "one path per series");
        assert!(svg.matches("<circle").count() == 10, "one marker per point");
    }

    #[test]
    fn log_scale_skips_nonpositive_values() {
        let mut fig = figure();
        fig.series[0].points[0].m.latency_mean_s = 0.0;
        let svg = render_chart(&fig, "latency", |m| m.latency_mean_s, true).unwrap();
        assert_eq!(svg.matches("<circle").count(), 9);
    }

    #[test]
    fn empty_figure_renders_none() {
        let fig = Figure::new("empty", "t", "x");
        assert!(render_chart(&fig, "throughput", |m| m.throughput_tps, false).is_none());
    }

    #[test]
    fn save_charts_writes_files() {
        let dir = std::env::temp_dir().join("lachesis-svg-test");
        let written = save_charts(&figure(), &dir).unwrap();
        assert_eq!(written.len(), 4);
        for f in written {
            let content = std::fs::read_to_string(dir.join(f)).unwrap();
            assert!(content.contains("</svg>"));
        }
    }

    #[test]
    fn percentile_and_slo_charts_render_when_populated() {
        let mut fig = figure();
        fig.id = "figX_slo".into();
        for s in &mut fig.series {
            for p in &mut s.points {
                p.m.latency_p = (0.01, 0.05, 0.1);
                p.m.e2e_p = (0.02, 0.08, 0.2);
                p.m.slo_target_s = 0.1;
                p.m.slo_miss_rate = 0.25;
            }
        }
        let dir = std::env::temp_dir().join("lachesis-svg-slo-test");
        let written = save_charts(&fig, &dir).unwrap();
        for chart in ["latency_p99", "e2e_p99", "slo_miss"] {
            assert!(
                written.iter().any(|f| f.contains(chart)),
                "missing {chart} in {written:?}"
            );
        }
        // Without targets the SLO chart disappears but tail charts stay.
        for s in &mut fig.series {
            for p in &mut s.points {
                p.m.slo_target_s = 0.0;
            }
        }
        let written = save_charts(&fig, &dir).unwrap();
        assert!(!written.iter().any(|f| f.contains("slo_miss")), "{written:?}");
        assert!(written.iter().any(|f| f.contains("latency_p99")));
    }

    #[test]
    fn escapes_xml_in_labels() {
        let mut fig = figure();
        fig.series[0].label = "A<&>B".into();
        let svg = render_chart(&fig, "throughput", |m| m.throughput_tps, false).unwrap();
        assert!(svg.contains("A&lt;&amp;&gt;B"));
        assert!(!svg.contains("A<&>B"));
    }
}
