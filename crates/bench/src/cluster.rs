//! A sharded rack simulation: N independent [`Kernel`]s advancing in
//! lockstep epochs under conservative lookahead.
//!
//! The rack is a set of *rack nodes* connected by a modeled network
//! ([`NetTopology`]). Rack nodes are assigned to *shards*; each shard is
//! one `Kernel` instance pinned to a persistent worker thread
//! ([`crate::pool::ShardSet`]). Because every modeled link has a non-zero
//! latency, a shard can run one *epoch* — `min` link latency of simulated
//! time — without observing any other shard: a message sent during epoch
//! `k` cannot arrive before the barrier that ends epoch `k` (classic
//! conservative-lookahead parallel discrete-event simulation).
//!
//! At each barrier the shards' outboxes are merged, sorted by
//! [`Envelope::order_key`] — `(recv_time, src, seq, dst)`, built only from
//! rack-level identifiers — and injected into the destination shards as
//! `schedule_once` events at exactly `recv_time`. **All** cross-rack-node
//! traffic goes through this fabric even when both nodes share a shard, so
//! simulation results are byte-identical for any shard count and any
//! worker-thread count; sharding changes wall-clock time only.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use lachesis::{CmdApplier, CmdOutbox, RemoteCmd};
use lachesis_metrics::TimeSeriesStore;
use simos::{
    CallbackId, Envelope, Kernel, LinkStamper, NetFaultPlan, NetTopology, NetVerdict, RackNodeId,
    SimDuration, SimTime,
};
use spe::{PhysOpId, RunningQuery, Tuple};

use crate::pool::ShardSet;

/// A message crossing the modeled rack network.
#[derive(Debug, Clone)]
pub enum ClusterMsg {
    /// A data tuple for physical operator `op` of the destination node's
    /// query `query` (deployment-order index — the rack-wide address space
    /// shared with [`lachesis::RemoteCmd`]).
    Tuple {
        /// Destination query index on the destination node.
        query: usize,
        /// Destination physical operator within that query.
        op: PhysOpId,
        /// The tuple itself.
        tuple: Tuple,
    },
    /// One completed Graphite bucket shipped by a metric relay
    /// ([`install_metric_relay`]).
    Metric {
        /// Metric path in the destination store.
        path: String,
        /// Bucket start time.
        bucket: SimTime,
        /// Bucket value (last write wins, like the source store).
        value: f64,
    },
    /// A Lachesis scheduling command for the destination node's
    /// [`CmdApplier`].
    Cmd(RemoteCmd),
}

impl ClusterMsg {
    /// Payload discriminant used by journals and snapshots.
    pub fn kind(&self) -> MsgKind {
        match self {
            ClusterMsg::Tuple { .. } => MsgKind::Tuple,
            ClusterMsg::Metric { .. } => MsgKind::Metric,
            ClusterMsg::Cmd(_) => MsgKind::Cmd,
        }
    }
}

/// Discriminant of a [`ClusterMsg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// Data tuple.
    Tuple,
    /// Metric bucket.
    Metric,
    /// Scheduling command.
    Cmd,
}

/// One fabric delivery, journaled for [`crate::trace::validate_cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveryRecord {
    /// Source rack node.
    pub src: RackNodeId,
    /// Destination rack node.
    pub dst: RackNodeId,
    /// Per-link sequence number.
    pub seq: u64,
    /// When the source handed the message to the network.
    pub send_time: SimTime,
    /// Modeled arrival time (`send_time` + link latency).
    pub recv_time: SimTime,
    /// Barrier at which the fabric injected the delivery event.
    pub injected_at: SimTime,
    /// Kernel time when the delivery event fired (must equal `recv_time`).
    pub delivered_at: SimTime,
    /// Payload discriminant.
    pub kind: MsgKind,
}

/// One control-plane envelope the [`NetFaultPlan`] dropped, journaled so
/// validators can account for the hole in the per-link sequence stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DropRecord {
    /// Source rack node.
    pub src: RackNodeId,
    /// Destination rack node.
    pub dst: RackNodeId,
    /// Per-link sequence number the envelope consumed before dropping.
    pub seq: u64,
    /// When the source handed the message to the network.
    pub send_time: SimTime,
    /// Payload discriminant (never [`MsgKind::Tuple`]: the fabric only
    /// faults control-plane traffic).
    pub kind: MsgKind,
}

/// An un-stamped send collected inside a shard between two barriers.
#[derive(Debug)]
struct RawSend {
    src: RackNodeId,
    dst: RackNodeId,
    at: SimTime,
    msg: ClusterMsg,
}

/// The shard-local buffer producers write into: relay sources, metric
/// relays and (via [`ClusterShard::step`]'s drain) Lachesis command
/// outboxes. Sends are stamped with per-link sequence numbers at the next
/// barrier, after a stable sort by `(src, dst, send_time)` — so the stream
/// of envelopes per link is identical no matter how rack nodes are packed
/// into shards.
#[derive(Debug, Default)]
pub struct ClusterOutbox {
    pending: RefCell<Vec<RawSend>>,
}

impl ClusterOutbox {
    /// Queues a message from rack node `src` to rack node `dst`, handed to
    /// the network at simulated time `at`.
    pub fn send(&self, src: RackNodeId, dst: RackNodeId, at: SimTime, msg: ClusterMsg) {
        self.pending.borrow_mut().push(RawSend { src, dst, at, msg });
    }

    /// Number of queued sends (drained at the next barrier).
    pub fn len(&self) -> usize {
        self.pending.borrow().len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.pending.borrow().is_empty()
    }
}

/// Per-rack-node runtime state inside a shard.
#[derive(Debug)]
pub struct NodeRuntime {
    rack_id: RackNodeId,
    node: simos::NodeId,
    queries: Vec<RunningQuery>,
    store: Rc<RefCell<TimeSeriesStore>>,
    applier: Rc<RefCell<CmdApplier>>,
    cmd_outbox: Option<CmdOutbox>,
}

impl NodeRuntime {
    /// The rack-level node id.
    pub fn rack_id(&self) -> RackNodeId {
        self.rack_id
    }

    /// The simulated node inside this shard's kernel.
    pub fn node(&self) -> simos::NodeId {
        self.node
    }

    /// The node's queries in deployment order (the fabric address space).
    pub fn queries(&self) -> &[RunningQuery] {
        &self.queries
    }

    /// The node-local metric store.
    pub fn store(&self) -> &Rc<RefCell<TimeSeriesStore>> {
        &self.store
    }

    /// The node's command applier (counts applied/skipped commands).
    pub fn applier(&self) -> &Rc<RefCell<CmdApplier>> {
        &self.applier
    }
}

/// What one shard hands back at a barrier.
struct StepOut {
    sent: Vec<Envelope<ClusterMsg>>,
    delivered: Vec<DeliveryRecord>,
    dropped: Vec<DropRecord>,
}

/// One shard: a kernel hosting a subset of the rack nodes, plus the fabric
/// plumbing ([`ClusterOutbox`], per-node [`LinkStamper`]s, the delivery
/// journal).
#[derive(Debug)]
pub struct ClusterShard {
    /// The shard's kernel. Public so experiment builders can deploy
    /// queries, install sources and tracing.
    pub kernel: Kernel,
    /// Trace handle for this shard's kernel, if a caller installed
    /// tracing (via [`Cluster::map_shards`]); kept here because handles
    /// are shard-thread-local and cannot cross the pool boundary.
    pub trace: Option<simos::TraceHandle>,
    topo: NetTopology,
    nodes: Vec<NodeRuntime>,
    stampers: BTreeMap<RackNodeId, LinkStamper>,
    outbox: Rc<ClusterOutbox>,
    delivered: Rc<RefCell<Vec<DeliveryRecord>>>,
    /// The network-fault plan, shared (as identical clones) by every
    /// shard. The plan's verdicts are pure functions of rack-node-level
    /// envelope identity, so any shard evaluates any envelope identically.
    net_faults: NetFaultPlan,
    dropped: Vec<DropRecord>,
}

impl ClusterShard {
    /// Wraps a kernel as a shard of the rack described by `topo`.
    pub fn new(kernel: Kernel, topo: NetTopology) -> ClusterShard {
        ClusterShard {
            kernel,
            trace: None,
            topo,
            nodes: Vec::new(),
            stampers: BTreeMap::new(),
            outbox: Rc::new(ClusterOutbox::default()),
            delivered: Rc::new(RefCell::new(Vec::new())),
            net_faults: NetFaultPlan::default(),
            dropped: Vec::new(),
        }
    }

    /// Installs the network-fault plan. Every shard of a cluster must hold
    /// an identical plan (use [`Cluster::set_net_faults`] to distribute
    /// one), because verdicts are re-derived at both the stamping and the
    /// injecting shard.
    pub fn set_net_faults(&mut self, plan: NetFaultPlan) {
        self.net_faults = plan;
    }

    /// The shared outbox handle for producers on this shard (relay
    /// sources, metric relays).
    pub fn outbox(&self) -> Rc<ClusterOutbox> {
        Rc::clone(&self.outbox)
    }

    /// Registers rack node `rack_id` as hosted by this shard, backed by
    /// simulated node `node` in this shard's kernel.
    ///
    /// # Panics
    ///
    /// Panics if the rack id is out of range or already registered.
    pub fn add_rack_node(
        &mut self,
        rack_id: RackNodeId,
        node: simos::NodeId,
        store: Rc<RefCell<TimeSeriesStore>>,
    ) {
        assert!(rack_id < self.topo.nodes(), "rack node {rack_id} out of range");
        assert!(
            !self.stampers.contains_key(&rack_id),
            "rack node {rack_id} registered twice"
        );
        self.stampers
            .insert(rack_id, LinkStamper::new(rack_id, self.topo.nodes()));
        self.nodes.push(NodeRuntime {
            rack_id,
            node,
            queries: Vec::new(),
            store,
            applier: Rc::new(RefCell::new(CmdApplier::new(Vec::new()))),
            cmd_outbox: None,
        });
    }

    /// Sets rack node `rack_id`'s queries (deployment order = fabric
    /// address space) and rebuilds its command applier around them.
    pub fn set_queries(&mut self, rack_id: RackNodeId, queries: Vec<RunningQuery>) {
        let nr = self.node_mut(rack_id);
        nr.applier = Rc::new(RefCell::new(CmdApplier::new(queries.clone())));
        nr.queries = queries;
    }

    /// Attaches the Lachesis command outbox whose entries originate from
    /// rack node `rack_id` (the controller node). Drained at each barrier.
    pub fn set_cmd_outbox(&mut self, rack_id: RackNodeId, outbox: CmdOutbox) {
        self.node_mut(rack_id).cmd_outbox = Some(outbox);
    }

    /// The rack ids hosted by this shard, in registration order.
    pub fn rack_ids(&self) -> Vec<RackNodeId> {
        self.nodes.iter().map(|n| n.rack_id).collect()
    }

    /// The runtime state of hosted rack node `rack_id`.
    ///
    /// # Panics
    ///
    /// Panics if the node is not hosted by this shard.
    pub fn node(&self, rack_id: RackNodeId) -> &NodeRuntime {
        self.nodes
            .iter()
            .find(|n| n.rack_id == rack_id)
            .unwrap_or_else(|| panic!("rack node {rack_id} not on this shard"))
    }

    fn node_mut(&mut self, rack_id: RackNodeId) -> &mut NodeRuntime {
        self.nodes
            .iter_mut()
            .find(|n| n.rack_id == rack_id)
            .unwrap_or_else(|| panic!("rack node {rack_id} not on this shard"))
    }

    /// All hosted rack nodes.
    pub fn rack_nodes(&self) -> &[NodeRuntime] {
        &self.nodes
    }

    /// Runs one epoch: injects `deliveries` (already sorted by
    /// [`Envelope::order_key`]) as kernel events at their `recv_time`,
    /// advances the kernel to `deadline`, and drains + stamps this shard's
    /// outbox.
    fn step(&mut self, deliveries: Vec<Envelope<ClusterMsg>>, deadline: SimTime) -> StepOut {
        let barrier = self.kernel.now();
        for env in deliveries {
            self.inject(env, barrier);
        }
        self.kernel.run_until(deadline);

        // Drain raw sends (+ Lachesis command outboxes) and stamp them.
        let mut raw: Vec<RawSend> = self.outbox.pending.borrow_mut().drain(..).collect();
        for nr in &self.nodes {
            if let Some(ob) = &nr.cmd_outbox {
                for send in ob.borrow_mut().drain(..) {
                    raw.push(RawSend {
                        src: nr.rack_id,
                        dst: send.dst,
                        at: send.at,
                        msg: ClusterMsg::Cmd(send.cmd),
                    });
                }
            }
        }
        // Stable by (src, dst, send_time): per-link order is send order,
        // independent of how nodes interleave inside a shard, so the seq
        // numbers stamped below are layout-invariant.
        raw.sort_by_key(|r| (r.src, r.dst, r.at));
        let mut sent = Vec::new();
        for r in raw {
            let stamper = self
                .stampers
                .get_mut(&r.src)
                .unwrap_or_else(|| panic!("send from foreign rack node {}", r.src));
            let mut env = stamper.stamp(&self.topo, r.dst, r.at, r.msg);
            // Conservative lookahead: nothing sent during this epoch may
            // arrive before the barrier that ends it.
            assert!(
                env.recv_time >= deadline,
                "lookahead violated: sent {:?} -> recv {:?} < barrier {:?}",
                env.send_time,
                env.recv_time,
                deadline
            );
            // The fault plan only touches control-plane traffic (commands
            // and metrics). Tuples are exempt: a destination queue models
            // exactly one network delay, and tuple loss belongs to the
            // SPE's shedding layer, not the fabric.
            if env.payload.kind() != MsgKind::Tuple {
                match self.net_faults.verdict(env.src, env.dst, env.seq, env.send_time) {
                    NetVerdict::Drop => {
                        self.dropped.push(DropRecord {
                            src: env.src,
                            dst: env.dst,
                            seq: env.seq,
                            send_time: env.send_time,
                            kind: env.payload.kind(),
                        });
                        continue;
                    }
                    NetVerdict::Delay(extra) => env.recv_time += extra,
                    NetVerdict::Deliver => {}
                }
            }
            sent.push(env);
        }
        StepOut {
            sent,
            delivered: self.delivered.borrow_mut().drain(..).collect(),
            dropped: std::mem::take(&mut self.dropped),
        }
    }

    fn inject(&mut self, env: Envelope<ClusterMsg>, barrier: SimTime) {
        assert!(
            env.recv_time >= barrier,
            "fabric delivered an envelope into the past"
        );
        let latency = self.topo.latency(env.src, env.dst);
        // Re-derive the fault-plan verdict at the destination shard: the
        // plan is pure, so this is exactly the extra the stamping shard
        // added (and a dropped envelope can never arrive here).
        let extra = if env.payload.kind() == MsgKind::Tuple {
            SimDuration::ZERO
        } else {
            match self.net_faults.verdict(env.src, env.dst, env.seq, env.send_time) {
                NetVerdict::Deliver => SimDuration::ZERO,
                NetVerdict::Delay(d) => d,
                NetVerdict::Drop => panic!(
                    "dropped envelope {}->{} seq {} reached inject",
                    env.src, env.dst, env.seq
                ),
            }
        };
        assert_eq!(
            env.recv_time,
            env.send_time + latency + extra,
            "envelope recv time disagrees with the latency matrix + fault plan"
        );
        let delay = env.recv_time - barrier;
        let mut record = DeliveryRecord {
            src: env.src,
            dst: env.dst,
            seq: env.seq,
            send_time: env.send_time,
            recv_time: env.recv_time,
            injected_at: barrier,
            delivered_at: SimTime::ZERO,
            kind: env.payload.kind(),
        };
        let journal = Rc::clone(&self.delivered);
        match env.payload {
            ClusterMsg::Tuple { query, op, tuple } => {
                let nr = self.node(env.dst);
                let q = nr.queries.get(query).unwrap_or_else(|| {
                    panic!("tuple for unknown query {query} on rack node {}", env.dst)
                });
                let queue = q.cell(op).in_queue().clone();
                // One modeled latency per destination queue: remote edges
                // share the invariant local `net_enqueue` edges have.
                queue.assert_net_delay(latency);
                self.kernel.schedule_once(delay, move |k| {
                    record.delivered_at = k.now();
                    journal.borrow_mut().push(record);
                    queue.deliver_remote(k, tuple);
                });
            }
            ClusterMsg::Metric { path, bucket, value } => {
                let store = Rc::clone(&self.node(env.dst).store);
                self.kernel.schedule_once(delay, move |k| {
                    record.delivered_at = k.now();
                    journal.borrow_mut().push(record);
                    store.borrow_mut().record(&path, bucket, value);
                });
            }
            ClusterMsg::Cmd(cmd) => {
                let applier = Rc::clone(&self.node(env.dst).applier);
                self.kernel.schedule_once(delay, move |k| {
                    record.delivered_at = k.now();
                    journal.borrow_mut().push(record);
                    applier.borrow_mut().apply(k, cmd);
                });
            }
        }
    }
}

/// Ships completed metric buckets from a node-local store to another rack
/// node's store, once per `period` (the push-based Graphite exporter: the
/// controller sees metrics `link latency + export period` stale). Returns
/// the callback id so callers can cancel the relay.
pub fn install_metric_relay(
    kernel: &mut Kernel,
    outbox: Rc<ClusterOutbox>,
    src: RackNodeId,
    dst: RackNodeId,
    store: Rc<RefCell<TimeSeriesStore>>,
    period: SimDuration,
) -> CallbackId {
    let mut cutoff = SimTime::ZERO;
    kernel.schedule_periodic(period, period, move |k| {
        let now = k.now();
        let res = store.borrow().resolution();
        for (path, bucket, value) in store.borrow().export_since(cutoff) {
            // Only completed buckets: the current bucket may still be
            // written to, and re-exports never happen.
            if bucket + res > now {
                continue;
            }
            cutoff = cutoff.max(bucket);
            outbox.send(src, dst, now, ClusterMsg::Metric { path, bucket, value });
        }
    })
}

/// Deterministic plain-data digest of one query's final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySnapshot {
    /// Query name.
    pub name: String,
    /// Total tuples ingested.
    pub ingress: u64,
    /// Total tuples emitted by sinks.
    pub egress: u64,
    /// Per-operator `(tuples_in, tuples_out)`.
    pub ops: Vec<(u64, u64)>,
    /// Per-operator input queue length at snapshot time.
    pub queue_len: Vec<usize>,
    /// Per-operator `nice` at snapshot time (thread-less operators report
    /// the neutral 0).
    pub nice: Vec<i32>,
}

/// Deterministic digest of one rack node's final state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Rack node id.
    pub rack_id: RackNodeId,
    /// Per-query digests in deployment order.
    pub queries: Vec<QuerySnapshot>,
    /// Commands applied / skipped by this node's [`CmdApplier`].
    pub cmds: (u64, u64),
}

/// Deterministic digest of the whole rack: the byte-identity artifact the
/// proptests and `cluster_bench` compare across shard layouts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSnapshot {
    /// Simulated time of the snapshot.
    pub at: SimTime,
    /// Per-rack-node digests, ascending rack id.
    pub nodes: Vec<NodeSnapshot>,
    /// In-flight envelopes `(src, dst, seq, send_ns, recv_ns, kind)`,
    /// sorted by order key.
    pub in_flight: Vec<(RackNodeId, RackNodeId, u64, u64, u64, MsgKind)>,
}

impl ClusterSnapshot {
    /// A stable 64-bit digest (FNV-1a over the debug rendering) for quick
    /// equality checks in JSON artifacts.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in format!("{self:?}").bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

fn snapshot_node(kernel: &Kernel, nr: &NodeRuntime) -> NodeSnapshot {
    let queries = nr
        .queries
        .iter()
        .map(|q| {
            let mut ops = Vec::new();
            let mut queue_len = Vec::new();
            let mut nice = Vec::new();
            for c in q.cells() {
                ops.push((c.tuples_in(), c.tuples_out()));
                queue_len.push(c.in_queue().len());
                nice.push(match c.thread() {
                    Some(tid) => kernel
                        .thread_info(tid)
                        .map(|i| i.nice.value())
                        .unwrap_or(0),
                    None => 0,
                });
            }
            QuerySnapshot {
                name: q.name().to_owned(),
                ingress: q.ingress_total(),
                egress: q.egress_total(),
                ops,
                queue_len,
                nice,
            }
        })
        .collect();
    let applier = nr.applier.borrow();
    NodeSnapshot {
        rack_id: nr.rack_id,
        queries,
        cmds: (applier.applied(), applier.skipped()),
    }
}

/// The lockstep rack simulation: routes envelopes between shards at epoch
/// barriers and keeps the delivery journal.
pub struct Cluster {
    set: ShardSet<ClusterShard>,
    topo: NetTopology,
    now: SimTime,
    pending: Vec<Envelope<ClusterMsg>>,
    node_shard: Vec<usize>,
    journal: Vec<DeliveryRecord>,
    drops: Vec<DropRecord>,
    epochs: u64,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.topo.nodes())
            .field("shards", &self.set.shards())
            .field("now", &self.now)
            .field("in_flight", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// Builds the rack: one [`ClusterShard`] per builder, constructed on
    /// its worker thread (`shard_threads` of them; `<= 1` runs everything
    /// inline on the caller). Every rack node of `topo` must be claimed by
    /// exactly one shard.
    pub fn new(
        topo: NetTopology,
        shard_threads: usize,
        builders: Vec<Box<dyn FnOnce() -> ClusterShard + Send>>,
    ) -> Cluster {
        assert!(!builders.is_empty(), "a cluster needs at least one shard");
        let mut set = ShardSet::new(shard_threads, builders);
        let per_shard: Vec<Vec<RackNodeId>> = set.run(
            (0..set.shards())
                .map(|_| {
                    Box::new(|s: &mut ClusterShard| s.rack_ids())
                        as Box<dyn FnOnce(&mut ClusterShard) -> Vec<RackNodeId> + Send>
                })
                .collect(),
        );
        let mut node_shard = vec![usize::MAX; topo.nodes()];
        for (shard, nodes) in per_shard.iter().enumerate() {
            for &rack_id in nodes {
                assert!(rack_id < topo.nodes(), "rack node {rack_id} out of range");
                assert_eq!(
                    node_shard[rack_id],
                    usize::MAX,
                    "rack node {rack_id} claimed by two shards"
                );
                node_shard[rack_id] = shard;
            }
        }
        for (rack_id, &shard) in node_shard.iter().enumerate() {
            assert_ne!(shard, usize::MAX, "rack node {rack_id} claimed by no shard");
        }
        Cluster {
            set,
            topo,
            now: SimTime::ZERO,
            pending: Vec::new(),
            node_shard,
            journal: Vec::new(),
            drops: Vec::new(),
            epochs: 0,
        }
    }

    /// Distributes one [`NetFaultPlan`] to every shard. Must be called
    /// before the first epoch; verdicts are pure functions of envelope
    /// identity, so identical clones keep all shards in agreement.
    pub fn set_net_faults(&mut self, plan: &NetFaultPlan) {
        assert_eq!(self.epochs, 0, "install the fault plan before running");
        self.map_shards(|_| {
            let plan = plan.clone();
            Box::new(move |s: &mut ClusterShard| s.set_net_faults(plan))
        });
    }

    /// The rack topology.
    pub fn topology(&self) -> &NetTopology {
        &self.topo
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.set.shards()
    }

    /// Number of worker threads actually running shards.
    pub fn threads(&self) -> usize {
        self.set.threads()
    }

    /// Current simulated time (a barrier).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Epoch barriers crossed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The epoch length: the minimum modeled link latency.
    pub fn lookahead(&self) -> SimDuration {
        self.topo.lookahead()
    }

    /// The fabric delivery journal (all shards, per-epoch shard order).
    pub fn journal(&self) -> &[DeliveryRecord] {
        &self.journal
    }

    /// Control-plane envelopes dropped by the [`NetFaultPlan`] (all
    /// shards, per-epoch shard order).
    pub fn drops(&self) -> &[DropRecord] {
        &self.drops
    }

    /// Runs the rack until simulated time `t` in lockstep epochs (the last
    /// epoch may be shorter than the lookahead).
    pub fn run_until(&mut self, t: SimTime) {
        assert!(t >= self.now, "run_until: deadline in the past");
        while self.now < t {
            let deadline = (self.now + self.lookahead()).min(t);
            self.step_to(deadline);
        }
    }

    /// Runs the rack for `dur` of simulated time.
    pub fn run_for(&mut self, dur: SimDuration) {
        self.run_until(self.now + dur);
    }

    /// One epoch: exchange pending envelopes, advance every shard to
    /// `deadline` in parallel, collect fresh envelopes.
    fn step_to(&mut self, deadline: SimTime) {
        assert!(deadline > self.now && deadline - self.now <= self.lookahead());
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_by_key(Envelope::order_key);
        let mut per_shard: Vec<Vec<Envelope<ClusterMsg>>> =
            (0..self.set.shards()).map(|_| Vec::new()).collect();
        for env in pending {
            per_shard[self.node_shard[env.dst]].push(env);
        }
        let outs: Vec<StepOut> = self.set.run(
            per_shard
                .into_iter()
                .map(|deliveries| {
                    Box::new(move |s: &mut ClusterShard| s.step(deliveries, deadline))
                        as Box<dyn FnOnce(&mut ClusterShard) -> StepOut + Send>
                })
                .collect(),
        );
        for out in outs {
            self.journal.extend(out.delivered);
            self.drops.extend(out.dropped);
            self.pending.extend(out.sent);
        }
        self.now = deadline;
        self.epochs += 1;
    }

    /// Runs one closure per shard (in parallel) and returns the results in
    /// shard order — measurement, tracing and snapshot plumbing.
    pub fn map_shards<O: Send + 'static>(
        &mut self,
        mut make: impl FnMut(usize) -> Box<dyn FnOnce(&mut ClusterShard) -> O + Send>,
    ) -> Vec<O> {
        let jobs = (0..self.set.shards()).map(&mut make).collect();
        self.set.run(jobs)
    }

    /// Takes the deterministic digest of the whole rack (layout-invariant:
    /// identical for any shard count / thread count at the same simulated
    /// time).
    pub fn snapshot(&mut self) -> ClusterSnapshot {
        let mut nodes: Vec<NodeSnapshot> = self
            .map_shards(|_| {
                Box::new(|s: &mut ClusterShard| {
                    s.nodes
                        .iter()
                        .map(|nr| snapshot_node(&s.kernel, nr))
                        .collect::<Vec<NodeSnapshot>>()
                })
            })
            .into_iter()
            .flatten()
            .collect();
        nodes.sort_by_key(|n| n.rack_id);
        let mut in_flight: Vec<_> = self
            .pending
            .iter()
            .map(|e| {
                (
                    e.src,
                    e.dst,
                    e.seq,
                    e.send_time.as_nanos(),
                    e.recv_time.as_nanos(),
                    e.payload.kind(),
                )
            })
            .collect();
        in_flight.sort_unstable();
        ClusterSnapshot {
            at: self.now,
            nodes,
            in_flight,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::SimTime;
    use spe::{
        deploy, install_relay_source, CostModel, EngineConfig, LogicalGraph, Partitioning,
        Placement, Role, Tuple,
    };

    /// A one-op sink query fed only from the fabric.
    fn remote_fed_graph(name: &str) -> LogicalGraph {
        let mut b = LogicalGraph::builder(name);
        let ing = b.op("in", Role::Ingress, CostModel::micros(20), 1, || {
            Box::new(spe::PassThrough)
        });
        let sink = b.op("out", Role::Egress, CostModel::micros(10), 1, || {
            Box::new(spe::Consume)
        });
        b.edge(ing, sink, Partitioning::Forward);
        b.build().expect("valid remote-fed graph")
    }

    /// Two rack nodes: node 0 runs a relay source, node 1 the query. The
    /// same builder body works for 1 or 2 shards.
    fn build_rack(topo: &NetTopology, shards: usize) -> Cluster {
        let assignments: Vec<Vec<RackNodeId>> = match shards {
            1 => vec![vec![0, 1]],
            2 => vec![vec![0], vec![1]],
            _ => panic!("test rack supports 1 or 2 shards"),
        };
        let builders = assignments
            .into_iter()
            .map(|racks| {
                let topo = topo.clone();
                Box::new(move || {
                    let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
                    for rack_id in racks {
                        let node = shard.kernel.add_node(&format!("rack{rack_id}"), 2);
                        let store = Rc::new(RefCell::new(TimeSeriesStore::new(
                            SimDuration::from_secs(1),
                        )));
                        shard.add_rack_node(rack_id, node, Rc::clone(&store));
                        if rack_id == 1 {
                            let q = deploy(
                                &mut shard.kernel,
                                remote_fed_graph("sinkq"),
                                EngineConfig::liebre(),
                                &Placement::single(node),
                                None,
                            )
                            .expect("deploy remote-fed query");
                            shard.set_queries(1, vec![q]);
                        } else {
                            let outbox = shard.outbox();
                            install_relay_source(
                                &mut shard.kernel,
                                "feeder",
                                1000.0,
                                Box::new(|seq, now| Tuple::new(now, seq, vec![])),
                                Box::new(move |k, t| {
                                    outbox.send(
                                        0,
                                        1,
                                        k.now(),
                                        ClusterMsg::Tuple { query: 0, op: 0, tuple: t },
                                    );
                                }),
                                SimDuration::from_millis(1),
                            );
                        }
                    }
                    shard
                }) as Box<dyn FnOnce() -> ClusterShard + Send>
            })
            .collect();
        Cluster::new(topo.clone(), 1, builders)
    }

    #[test]
    fn tuples_cross_the_fabric_and_are_processed() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let mut cluster = build_rack(&topo, 2);
        cluster.run_for(SimDuration::from_secs(2));
        let snap = cluster.snapshot();
        let q = &snap.nodes[1].queries[0];
        assert!(q.ingress > 1_500, "fabric-fed ingress: {}", q.ingress);
        assert!(q.egress > 1_000, "processed through to the sink: {}", q.egress);
    }

    #[test]
    fn snapshots_are_identical_across_shard_layouts() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let mut merged = build_rack(&topo, 1);
        let mut split = build_rack(&topo, 2);
        merged.run_for(SimDuration::from_secs(2));
        split.run_for(SimDuration::from_secs(2));
        let a = merged.snapshot();
        let b = split.snapshot();
        assert_eq!(a, b, "sharding must not change simulation results");
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn deliveries_land_exactly_at_modeled_latency() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let mut cluster = build_rack(&topo, 2);
        cluster.run_for(SimDuration::from_millis(50));
        let journal = cluster.journal();
        assert!(!journal.is_empty(), "tuples delivered");
        for rec in journal {
            assert_eq!(rec.delivered_at, rec.recv_time, "fires at recv_time");
            assert_eq!(
                rec.recv_time,
                rec.send_time + topo.latency(rec.src, rec.dst),
                "latency honored"
            );
            assert!(rec.recv_time >= rec.injected_at, "never into the past");
        }
    }

    #[test]
    fn metric_relay_ships_completed_buckets() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let shard_builder = {
            let topo = topo.clone();
            Box::new(move || {
                let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
                let n0 = shard.kernel.add_node("rack0", 1);
                let n1 = shard.kernel.add_node("rack1", 1);
                let store0 = Rc::new(RefCell::new(TimeSeriesStore::new(
                    SimDuration::from_secs(1),
                )));
                let store1 = Rc::new(RefCell::new(TimeSeriesStore::new(
                    SimDuration::from_secs(1),
                )));
                shard.add_rack_node(0, n0, Rc::clone(&store0));
                shard.add_rack_node(1, n1, Rc::clone(&store1));
                // Node 1 writes a metric each second; a relay ships it to
                // node 0 (the "controller").
                let w = Rc::clone(&store1);
                shard.kernel.schedule_periodic(
                    SimDuration::from_secs(1),
                    SimDuration::from_secs(1),
                    move |k| {
                        let now = k.now();
                        w.borrow_mut().record("liebre.q.0.queue_size", now, 7.0);
                    },
                );
                let outbox = shard.outbox();
                install_metric_relay(
                    &mut shard.kernel,
                    outbox,
                    1,
                    0,
                    store1,
                    SimDuration::from_secs(1),
                );
                shard
            }) as Box<dyn FnOnce() -> ClusterShard + Send>
        };
        let mut cluster = Cluster::new(topo, 1, vec![shard_builder]);
        cluster.run_for(SimDuration::from_secs(5));
        let shipped = cluster.map_shards(|_| {
            Box::new(|s: &mut ClusterShard| {
                s.node(0)
                    .store()
                    .borrow()
                    .latest("liebre.q.0.queue_size")
                    .map(|(t, v)| (t.as_nanos(), v))
            })
        });
        let (bucket_ns, v) = shipped[0].expect("metric arrived at the controller");
        assert_eq!(v, 7.0);
        assert!(bucket_ns >= 1_000_000_000, "a completed bucket");
        assert!(
            cluster.journal().iter().any(|r| r.kind == MsgKind::Metric),
            "journaled as metric deliveries"
        );
    }

    /// Node 1 relays a metric bucket to node 0 every second; the plan
    /// partitions them for a window and spikes the link afterwards.
    fn faulted_metric_rack(shards: usize, plan: &simos::NetFaultPlan) -> Cluster {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let assignments: Vec<Vec<RackNodeId>> = match shards {
            1 => vec![vec![0, 1]],
            2 => vec![vec![0], vec![1]],
            _ => panic!("test rack supports 1 or 2 shards"),
        };
        let builders = assignments
            .into_iter()
            .map(|racks| {
                let topo = topo.clone();
                Box::new(move || {
                    let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
                    for rack_id in racks {
                        let node = shard.kernel.add_node(&format!("rack{rack_id}"), 1);
                        let store = Rc::new(RefCell::new(TimeSeriesStore::new(
                            SimDuration::from_secs(1),
                        )));
                        shard.add_rack_node(rack_id, node, Rc::clone(&store));
                        if rack_id == 1 {
                            let w = Rc::clone(&store);
                            shard.kernel.schedule_periodic(
                                SimDuration::from_millis(250),
                                SimDuration::from_millis(250),
                                move |k| {
                                    let now = k.now();
                                    w.borrow_mut().record("liebre.q.0.queue_size", now, 3.0);
                                },
                            );
                            let outbox = shard.outbox();
                            install_metric_relay(
                                &mut shard.kernel,
                                outbox,
                                1,
                                0,
                                store,
                                SimDuration::from_millis(500),
                            );
                        }
                    }
                    shard
                }) as Box<dyn FnOnce() -> ClusterShard + Send>
            })
            .collect();
        let mut cluster = Cluster::new(topo, 1, builders);
        cluster.set_net_faults(plan);
        cluster
    }

    #[test]
    fn net_faults_drop_and_delay_control_plane_deterministically() {
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        let plan = simos::NetFaultPlan::new(11)
            .partition(t(3), t(6), vec![0], vec![])
            .latency_spike(t(6), t(9), 1, 0, 1.0, SimDuration::from_millis(4));
        let run = |shards: usize| {
            let mut cluster = faulted_metric_rack(shards, &plan);
            cluster.run_for(SimDuration::from_secs(10));
            let stats =
                crate::trace::validate_cluster_chaos(
                    cluster.journal(),
                    cluster.drops(),
                    cluster.topology(),
                    &plan,
                )
                .expect("chaos journal replays against plan + topology");
            let mut drops = cluster.drops().to_vec();
            drops.sort_by_key(|d| (d.src, d.dst, d.seq));
            let mut journal = cluster.journal().to_vec();
            journal.sort_by_key(|r| (r.src, r.dst, r.seq));
            (stats, drops, journal)
        };
        let (stats, drops, journal) = run(1);
        assert!(stats.drops > 0, "the partition window dropped relays");
        assert!(stats.delayed > 0, "the spike window delayed relays");
        assert!(stats.metrics > 0, "relays outside the windows landed");
        assert!(drops.iter().all(|d| d.kind == MsgKind::Metric));
        // Strict validation rejects the same journal (late deliveries).
        let err = crate::trace::validate_cluster(&journal, &NetTopology::uniform(2, SimDuration::from_millis(1)))
            .unwrap_err();
        assert!(err.contains("latency"), "{err}");
        // Layout invariance: the split rack drops/delays/delivers the
        // exact same envelopes.
        let (stats2, drops2, journal2) = run(2);
        assert_eq!(stats, stats2);
        assert_eq!(drops, drops2);
        assert_eq!(journal, journal2);
    }

    #[test]
    #[should_panic(expected = "claimed by no shard")]
    fn unclaimed_rack_nodes_are_rejected() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
        let t = topo.clone();
        let builder = Box::new(move || {
            let mut shard = ClusterShard::new(Kernel::default(), t.clone());
            let n0 = shard.kernel.add_node("rack0", 1);
            shard.add_rack_node(
                0,
                n0,
                Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1)))),
            );
            shard
        }) as Box<dyn FnOnce() -> ClusterShard + Send>;
        let _ = Cluster::new(topo, 1, vec![builder]);
    }

    #[test]
    fn snapshot_captures_in_flight_envelopes() {
        let topo = NetTopology::uniform(2, SimDuration::from_millis(5));
        let mut cluster = build_rack(&topo, 2);
        // One epoch: sends from epoch 0 are in flight, not yet delivered.
        cluster.run_until(SimTime::ZERO + SimDuration::from_millis(5));
        let snap = cluster.snapshot();
        assert!(!snap.in_flight.is_empty(), "epoch-0 sends are in flight");
        assert_eq!(snap.nodes[1].queries[0].ingress, 0, "nothing delivered yet");
    }
}
