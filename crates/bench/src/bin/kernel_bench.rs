//! `kernel_bench` — measures how many simulated seconds the simos kernel
//! replays per wall-clock second on the scale-out workload (LR with
//! operator parallelism spread over as many Odroid nodes, Fig. 17 style).
//!
//! ```text
//! cargo run -p bench --release --bin kernel_bench -- --sim-secs 120
//! cargo run -p bench --release --bin kernel_bench -- --sim-secs 120 \
//!     --check BENCH_kernel.json            # CI: fail on >30% regression
//! cargo run -p bench --release --bin kernel_bench -- --write BENCH_kernel.json
//! cargo run -p bench --release --bin kernel_bench -- --batch 1   # scalar path
//! ```
//!
//! The emitted JSON is committed as `BENCH_kernel.json` so the
//! simulated-seconds-per-wall-second figure is tracked across PRs. Besides
//! raw speed the report carries the work done (`tuples_processed`,
//! `batches`, `avg_batch_size`), so a regression can be told apart from a
//! workload change: `--check` failures print old-vs-new deltas for every
//! recorded field.

use std::process::ExitCode;
use std::rc::Rc;
use std::time::Instant;

use bench::harness::new_store;
use bench::json::Json;
use simos::{machines, Kernel, NodeId, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery};

/// Fraction of the baseline throughput below which `--check` fails.
const REGRESSION_FLOOR: f64 = 0.7;

struct Opts {
    sim_secs: u64,
    parallelism: usize,
    rate: f64,
    batch: Option<usize>,
    check: Option<String>,
    write: Option<String>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: kernel_bench [--sim-secs N] [--parallelism P] [--rate R]\n\
         \u{20}                   [--batch N] [--check BASELINE.json]\n\
         \u{20}                   [--write OUT.json] [--trace TRACE.json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        sim_secs: 30,
        parallelism: 8,
        rate: 0.0,
        batch: None,
        check: None,
        write: None,
        trace: None,
    };
    // Every flag takes exactly one value.
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--sim-secs" => opts.sim_secs = value.parse().unwrap_or_else(|_| usage()),
            "--parallelism" => opts.parallelism = value.parse().unwrap_or_else(|_| usage()),
            "--rate" => opts.rate = value.parse().unwrap_or_else(|_| usage()),
            "--batch" => opts.batch = Some(value.parse().unwrap_or_else(|_| usage())),
            "--check" => opts.check = Some(value),
            "--write" => opts.write = Some(value),
            "--trace" => opts.trace = Some(value),
            _ => usage(),
        }
        i += 2;
    }
    if opts.rate <= 0.0 {
        // Keep per-node load comparable to the Fig. 17 mid-range points.
        opts.rate = 2_000.0 * opts.parallelism as f64;
    }
    opts
}

/// Builds the scale-out workload: LR at `parallelism`, one Odroid per
/// pipeline replica, source rate split across replicas by the deployer.
fn build_workload(
    parallelism: usize,
    rate: f64,
    seed: u64,
    batch: Option<usize>,
) -> (Kernel, RunningQuery) {
    let mut kernel = Kernel::new(machines::odroid_config());
    let nodes: Vec<NodeId> = (0..parallelism)
        .map(|i| machines::add_odroid(&mut kernel, &format!("odroid{i}")))
        .collect();
    let store = new_store();
    let graph = queries::lr_with_parallelism(rate, seed, parallelism);
    let mut config = EngineConfig::storm();
    config.seed = seed;
    if let Some(n) = batch {
        config.batch_max = n.max(1);
    }
    let query = deploy(
        &mut kernel,
        graph,
        config,
        &Placement::spread(nodes),
        Some(Rc::clone(&store)),
    )
    .expect("deploy");
    (kernel, query)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let (mut kernel, query) = build_workload(opts.parallelism, opts.rate, 1, opts.batch);

    // Warm up: fill queues and reach steady state before timing.
    kernel.run_for(SimDuration::from_secs(1));
    query.reset_stats();

    // Tracing is installed after warm-up so the trace covers exactly the
    // timed region. Note the reported sim-s/wall-s then includes tracing
    // overhead — the CI regression gate runs without `--trace`, which is
    // what proves the zero-cost-when-off claim. Ring-bounded so long runs
    // keep a fixed memory footprint (oldest records are dropped).
    let trace_handle = opts
        .trace
        .as_ref()
        .map(|_| kernel.install_tracing(Some(2_000_000)));

    let start = Instant::now();
    kernel.run_for(SimDuration::from_secs(opts.sim_secs));
    let wall = start.elapsed().as_secs_f64();
    let sims_per_wall = opts.sim_secs as f64 / wall;

    // Work done during the timed region (warm-up stats were reset): how
    // many tuples the operators processed and in how many `begin` rounds —
    // `tuples / batches` is the realized average batch size (1.0 when the
    // scalar path ran, e.g. under `--batch 1`).
    let tuples_processed: u64 = query.cells().iter().map(|c| c.tuples_in()).sum();
    let batches: u64 = query.cells().iter().map(|c| c.batches()).sum();
    let avg_batch_size = if batches == 0 {
        0.0
    } else {
        tuples_processed as f64 / batches as f64
    };
    eprintln!(
        "kernel_bench: {} sim-s in {:.2} wall-s => {:.1} sim-s/wall-s \
         (parallelism={}, rate={} t/s)",
        opts.sim_secs, wall, sims_per_wall, opts.parallelism, opts.rate
    );
    eprintln!(
        "kernel_bench: {} tuples in {} batches (avg batch {:.2}), \
         {} kernel loop iterations",
        tuples_processed,
        batches,
        avg_batch_size,
        kernel.loop_iterations()
    );

    let report = Json::obj(vec![
        ("workload", Json::Str("lr-scale-out".into())),
        ("parallelism", Json::Num(opts.parallelism as f64)),
        ("rate_tps", Json::Num(opts.rate)),
        ("sim_secs", Json::Num(opts.sim_secs as f64)),
        ("wall_secs", Json::Num(wall)),
        ("sims_per_wall", Json::Num(sims_per_wall)),
        ("tuples_processed", Json::Num(tuples_processed as f64)),
        ("batches", Json::Num(batches as f64)),
        ("avg_batch_size", Json::Num(avg_batch_size)),
    ]);
    if let Some(path) = &opts.write {
        std::fs::write(path, report.pretty()).expect("write report");
        eprintln!("kernel_bench: wrote {path}");
    }

    if let (Some(path), Some(handle)) = (&opts.trace, &trace_handle) {
        let dump = bench::trace::capture(&kernel, handle, "kernel_bench: lr-scale-out");
        let json = bench::trace::export_chrome(std::slice::from_ref(&dump)).compact();
        if let Err(e) = bench::trace::validate_chrome(&json) {
            eprintln!("kernel_bench: trace failed shape validation: {e}");
            return ExitCode::FAILURE;
        }
        std::fs::write(path, json).expect("write trace");
        eprint!("{}", bench::trace::summarize(std::slice::from_ref(&dump)));
        eprintln!("kernel_bench: wrote {path} (open in https://ui.perfetto.dev)");
    }

    if let Some(path) = &opts.check {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let baseline = Json::parse(&text).expect("parse baseline");
        let expect = baseline
            .get("sims_per_wall")
            .and_then(Json::as_f64)
            .expect("baseline sims_per_wall");
        let floor = expect * REGRESSION_FLOOR;
        if sims_per_wall < floor {
            eprintln!(
                "kernel_bench: REGRESSION: {sims_per_wall:.1} sim-s/wall-s is below \
                 {floor:.1} (70% of the {expect:.1} baseline in {path})"
            );
            // Old-vs-new per-field deltas: a workload drift (tuple counts
            // moved) reads very differently from a plain slowdown.
            for (field, new) in [
                ("sims_per_wall", sims_per_wall),
                ("wall_secs", wall),
                ("tuples_processed", tuples_processed as f64),
                ("batches", batches as f64),
                ("avg_batch_size", avg_batch_size),
            ] {
                let old = baseline.get(field).and_then(Json::as_f64);
                match old {
                    Some(old) if old != 0.0 => eprintln!(
                        "kernel_bench:   {field}: baseline {old:.3} -> now {new:.3} \
                         ({:+.1}%)",
                        (new - old) / old * 100.0
                    ),
                    Some(old) => eprintln!(
                        "kernel_bench:   {field}: baseline {old:.3} -> now {new:.3}"
                    ),
                    None => eprintln!(
                        "kernel_bench:   {field}: not in baseline -> now {new:.3}"
                    ),
                }
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "kernel_bench: OK: {sims_per_wall:.1} sim-s/wall-s >= {floor:.1} \
             (70% of the {expect:.1} baseline)"
        );
    }
    ExitCode::SUCCESS
}
