//! `cluster_bench` — measures what sharding the simulation buys: the same
//! figd1-style rack is replayed once on a single merged kernel and once as
//! 8 lockstep shards on real threads, and the two runs must produce the
//! same snapshot digest (sharding is a pure wall-clock optimization).
//!
//! ```text
//! cargo run -p bench --release --bin cluster_bench -- --sim-secs 20
//! cargo run -p bench --release --bin cluster_bench -- --check BENCH_cluster.json
//! cargo run -p bench --release --bin cluster_bench -- --write BENCH_cluster.json
//! cargo run -p bench --release --bin cluster_bench -- --trace rack.json
//! ```
//!
//! The emitted JSON is committed as `BENCH_cluster.json`. `--check` gates
//! three things:
//!
//! - **determinism** (always): the merged and sharded digests of this run
//!   agree, and — when the workload knobs match the baseline — equal the
//!   committed digest, so a cross-PR behavior drift cannot hide behind a
//!   speed discussion;
//! - **throughput** (always): the sharded run replays at least 70% of the
//!   baseline's simulated-seconds-per-wall-second;
//! - **speedup** (core-aware): with 8+ CPUs available the sharded run must
//!   beat the merged run by at least [`SPEEDUP_FLOOR`]×; on smaller
//!   machines the gate is skipped with an explicit message, since 8
//!   shards cannot physically outrun one kernel on one core.

use std::process::ExitCode;
use std::time::Instant;

use bench::experiments::rack::{build_rack, RackSpec};
use bench::json::Json;
use bench::trace::{split_by_node, validate_cluster};
use simos::SimDuration;

/// Fraction of the baseline sim-rate below which `--check` fails.
const REGRESSION_FLOOR: f64 = 0.7;
/// Minimum merged/sharded wall-clock ratio on machines with enough cores.
const SPEEDUP_FLOOR: f64 = 3.0;
/// Cores needed before the speedup gate is meaningful for 8 shards.
const SPEEDUP_CORES: usize = 8;
/// Shards (and driver threads) of the sharded run.
const SHARDS: usize = 8;

struct Opts {
    sim_secs: u64,
    nodes: usize,
    pipelines: usize,
    rate: f64,
    check: Option<String>,
    write: Option<String>,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: cluster_bench [--sim-secs N] [--nodes N] [--pipelines P] [--rate R]\n\
         \u{20}                    [--check BASELINE.json] [--write OUT.json]\n\
         \u{20}                    [--trace TRACE.json]"
    );
    std::process::exit(2)
}

fn parse_args() -> Opts {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Opts {
        sim_secs: 20,
        nodes: 9,
        pipelines: 2,
        rate: 250.0,
        check: None,
        write: None,
        trace: None,
    };
    // Every flag takes exactly one value.
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).cloned().unwrap_or_else(|| usage());
        match args[i].as_str() {
            "--sim-secs" => opts.sim_secs = value.parse().unwrap_or_else(|_| usage()),
            "--nodes" => opts.nodes = value.parse().unwrap_or_else(|_| usage()),
            "--pipelines" => opts.pipelines = value.parse().unwrap_or_else(|_| usage()),
            "--rate" => opts.rate = value.parse().unwrap_or_else(|_| usage()),
            "--check" => opts.check = Some(value),
            "--write" => opts.write = Some(value),
            "--trace" => opts.trace = Some(value),
            _ => usage(),
        }
        i += 2;
    }
    opts
}

fn spec(opts: &Opts, shards: usize, threads: usize) -> RackSpec {
    RackSpec {
        nodes: opts.nodes,
        shards,
        shard_threads: threads,
        latency: SimDuration::from_millis(1),
        pipelines: opts.pipelines,
        rate_tps: opts.rate,
        with_lachesis: true,
        seed: 1,
    }
}

struct RunOut {
    wall: f64,
    digest: u64,
    tuples: u64,
    deliveries: u64,
    epochs: u64,
}

/// One timed replay: warm-up, timed region, digest + work counters. With
/// `trace`, tracing is installed on every shard kernel after warm-up and
/// the dumps are split per rack node so Perfetto shows one `pid` per
/// simulated machine.
fn run(spec: &RackSpec, sim_secs: u64, trace: bool) -> (RunOut, Vec<bench::trace::TraceDump>) {
    let mut cluster = build_rack(spec);
    cluster.run_for(SimDuration::from_secs(1));
    if trace {
        cluster.map_shards(|_| {
            Box::new(|s| {
                s.trace = Some(s.kernel.install_tracing(Some(2_000_000)));
            })
        });
    }
    let start = Instant::now();
    cluster.run_for(SimDuration::from_secs(sim_secs));
    let wall = start.elapsed().as_secs_f64();

    let dumps: Vec<bench::trace::TraceDump> = cluster
        .map_shards(|i| {
            Box::new(move |s| {
                s.trace
                    .as_ref()
                    .map(|h| bench::trace::capture(&s.kernel, h, &format!("shard{i}")))
            })
        })
        .into_iter()
        .flatten()
        .flat_map(|d| split_by_node(&d))
        .collect();

    let tuples: u64 = cluster
        .map_shards(|_| {
            Box::new(|s| {
                s.rack_nodes()
                    .iter()
                    .flat_map(|nr| nr.queries())
                    .map(|q| q.ingress_total())
                    .sum::<u64>()
            })
        })
        .into_iter()
        .sum();
    let stats = validate_cluster(cluster.journal(), cluster.topology())
        .expect("fabric journal replays cleanly");
    let out = RunOut {
        wall,
        digest: cluster.snapshot().digest(),
        tuples,
        deliveries: stats.deliveries,
        epochs: cluster.epochs(),
    };
    (out, dumps)
}

fn main() -> ExitCode {
    let opts = parse_args();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let threads = SHARDS.min(cores);

    eprintln!(
        "cluster_bench: rack of {} nodes x {} pipelines @ {} t/s, {} sim-s \
         (merged, then {SHARDS} shards on {threads} threads)",
        opts.nodes, opts.pipelines, opts.rate, opts.sim_secs
    );
    let (merged, dumps) = run(&spec(&opts, 1, 1), opts.sim_secs, opts.trace.is_some());
    let (sharded, _) = run(&spec(&opts, SHARDS, threads), opts.sim_secs, false);

    // The whole point of the fabric: the shard layout must be invisible in
    // the results. This holds regardless of flags, so it is asserted even
    // outside --check.
    if merged.digest != sharded.digest {
        eprintln!(
            "cluster_bench: DETERMINISM VIOLATION: merged digest {:016x} != sharded \
             digest {:016x}",
            merged.digest, sharded.digest
        );
        return ExitCode::FAILURE;
    }

    let speedup = merged.wall / sharded.wall;
    let sims_per_wall = opts.sim_secs as f64 / sharded.wall;
    eprintln!(
        "cluster_bench: merged {:.2} wall-s, sharded {:.2} wall-s => {speedup:.2}x \
         ({sims_per_wall:.1} sim-s/wall-s sharded, digest {:016x})",
        merged.wall, sharded.wall, merged.digest
    );
    eprintln!(
        "cluster_bench: {} tuples ingested, {} fabric deliveries, {} epochs",
        sharded.tuples, sharded.deliveries, sharded.epochs
    );

    let report = Json::obj(vec![
        ("workload", Json::Str("rack-syn".into())),
        ("nodes", Json::Num(opts.nodes as f64)),
        ("pipelines", Json::Num(opts.pipelines as f64)),
        ("rate_tps", Json::Num(opts.rate)),
        ("sim_secs", Json::Num(opts.sim_secs as f64)),
        ("shards", Json::Num(SHARDS as f64)),
        ("wall_merged", Json::Num(merged.wall)),
        ("wall_sharded", Json::Num(sharded.wall)),
        ("speedup", Json::Num(speedup)),
        ("sims_per_wall", Json::Num(sims_per_wall)),
        ("digest", Json::Str(format!("{:016x}", merged.digest))),
        ("tuples_processed", Json::Num(sharded.tuples as f64)),
        ("deliveries", Json::Num(sharded.deliveries as f64)),
        ("epochs", Json::Num(sharded.epochs as f64)),
    ]);
    if let Some(path) = &opts.write {
        std::fs::write(path, report.pretty()).expect("write report");
        eprintln!("cluster_bench: wrote {path}");
    }

    if let Some(path) = &opts.trace {
        let json = bench::trace::export_chrome(&dumps).compact();
        if let Err(e) = bench::trace::validate_chrome(&json) {
            eprintln!("cluster_bench: trace failed shape validation: {e}");
            return ExitCode::FAILURE;
        }
        std::fs::write(path, json).expect("write trace");
        eprintln!(
            "cluster_bench: wrote {path} with {} per-node process lanes \
             (open in https://ui.perfetto.dev)",
            dumps.len()
        );
    }

    if let Some(path) = &opts.check {
        let text = std::fs::read_to_string(path).expect("read baseline");
        let baseline = Json::parse(&text).expect("parse baseline");
        let field = |name: &str| baseline.get(name).and_then(Json::as_f64);

        // Digest comparison is only meaningful when this run replayed the
        // baseline's workload.
        let same_workload = [
            ("nodes", opts.nodes as f64),
            ("pipelines", opts.pipelines as f64),
            ("rate_tps", opts.rate),
            ("sim_secs", opts.sim_secs as f64),
        ]
        .iter()
        .all(|(name, now)| field(name) == Some(*now));
        if same_workload {
            let expect = baseline.get("digest").and_then(Json::as_str).unwrap_or("");
            let got = format!("{:016x}", merged.digest);
            if got != expect {
                eprintln!(
                    "cluster_bench: DIGEST MISMATCH: baseline {expect} -> now {got}; \
                     the rack behaves differently than when {path} was written"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("cluster_bench: OK: digest matches the {path} baseline");
        } else {
            eprintln!(
                "cluster_bench: note: workload knobs differ from {path}; digest not \
                 compared"
            );
        }

        let expect = field("sims_per_wall").expect("baseline sims_per_wall");
        let floor = expect * REGRESSION_FLOOR;
        if sims_per_wall < floor {
            eprintln!(
                "cluster_bench: REGRESSION: {sims_per_wall:.1} sim-s/wall-s is below \
                 {floor:.1} (70% of the {expect:.1} baseline in {path})"
            );
            for (name, new) in [
                ("sims_per_wall", sims_per_wall),
                ("wall_merged", merged.wall),
                ("wall_sharded", sharded.wall),
                ("speedup", speedup),
                ("tuples_processed", sharded.tuples as f64),
                ("deliveries", sharded.deliveries as f64),
            ] {
                match field(name) {
                    Some(old) if old != 0.0 => eprintln!(
                        "cluster_bench:   {name}: baseline {old:.3} -> now {new:.3} \
                         ({:+.1}%)",
                        (new - old) / old * 100.0
                    ),
                    Some(old) => {
                        eprintln!("cluster_bench:   {name}: baseline {old:.3} -> now {new:.3}")
                    }
                    None => eprintln!("cluster_bench:   {name}: not in baseline -> now {new:.3}"),
                }
            }
            return ExitCode::FAILURE;
        }
        eprintln!(
            "cluster_bench: OK: {sims_per_wall:.1} sim-s/wall-s >= {floor:.1} \
             (70% of the {expect:.1} baseline)"
        );

        if cores >= SPEEDUP_CORES {
            if speedup < SPEEDUP_FLOOR {
                eprintln!(
                    "cluster_bench: SPEEDUP REGRESSION: {speedup:.2}x < {SPEEDUP_FLOOR}x \
                     with {cores} cores available"
                );
                return ExitCode::FAILURE;
            }
            eprintln!("cluster_bench: OK: {speedup:.2}x >= {SPEEDUP_FLOOR}x on {cores} cores");
        } else {
            eprintln!(
                "cluster_bench: skipping the {SPEEDUP_FLOOR}x speedup gate: only {cores} \
                 core(s) available, {SPEEDUP_CORES} needed for {SHARDS} shards to outrun \
                 one kernel (determinism and sim-rate were still checked)"
            );
        }
    }
    ExitCode::SUCCESS
}
