//! Internal calibration sweep: saturation points per query and scheduler.

use bench::experiments::single_query::QueryKind;
use bench::harness::{GoalKind, RunConfig};
use bench::schedulers::{run_point, PointSpec, PolicyChoice, Sched, TranslatorChoice};
use spe::SpeKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let sweeps: Vec<(QueryKind, SpeKind, Vec<f64>)> = vec![
        (QueryKind::Etl, SpeKind::Storm, vec![1000., 1200., 1400., 1600., 1800.]),
        (QueryKind::Stats, SpeKind::Storm, vec![240., 300., 340., 380., 440.]),
        (QueryKind::Lr, SpeKind::Storm, vec![3000., 4500., 5500., 6500., 7500.]),
        (QueryKind::Vs, SpeKind::Storm, vec![1500., 2000., 2500., 3000., 3500., 4000.]),
        (QueryKind::Lr, SpeKind::Flink, vec![3000., 4500., 5500., 6500.]),
        (QueryKind::Vs, SpeKind::Flink, vec![1500., 2000., 2500., 3000.]),
    ];
    let scheds = [
        Sched::Os,
        Sched::Lachesis(PolicyChoice::Qs, TranslatorChoice::Nice),
        Sched::EdgeWise,
    ];
    for (q, engine, rates) in sweeps {
        if which != "all" && !q.name().eq_ignore_ascii_case(which) {
            continue;
        }
        println!("### {} on {:?}", q.name(), engine);
        for sched in &scheds {
            if sched.is_ulss() && engine == SpeKind::Flink {
                continue; // bounded queues + worker pool is rejected
            }
            print!("{:>14}:", sched.label());
            for &rate in &rates {
                let (m, _) = run_point(PointSpec {
                    graph: Box::new(move |r, s| q.build(r, s)),
                    engine,
                    sched: sched.clone(),
                    rate,
                    seed: 1,
                    cfg: RunConfig {
                        warmup: simos::SimDuration::from_secs(4),
                        measure: simos::SimDuration::from_secs(16),
                        goal: GoalKind::QueueSizeVariance,
                    },
                    blocking: None,
                    downstream: vec![],
                });
                print!(
                    " [{:.0}: tp={:.0} lat={:.3} e2e={:.2} u={:.2}]",
                    rate, m.throughput_tps, m.latency_mean_s, m.e2e_mean_s, m.utilization
                );
            }
            println!();
        }
    }
}
