//! `repro` — regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p bench --release --bin repro -- all --quick
//! cargo run -p bench --release --bin repro -- fig5 fig9
//! cargo run -p bench --release --bin repro -- fig18 --out results --reps 3
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use bench::experiments::{
    ablation, chaos, churn, deadline, multi_query, multi_spe, rack, scale_out, single_query,
    soak, table1,
};
use bench::report::Figure;
use bench::ExpOptions;

/// `all` runs every experiment; the fig13 panels come out of the
/// fig9-fig12 runs, so fig13 is only an explicit id (running it separately
/// would redo those sweeps).
const ALL: [&str; 20] = [
    "fig1", "fig5", "fig7", "fig9", "fig10", "fig11", "fig12", "fig14", "fig15", "fig16",
    "fig17", "fig18", "figc1", "figc2", "figc3", "figd1", "fige1", "figf1", "ablation", "table1",
];

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment...|all> [--quick] [--reps N] [--out DIR] [--jobs N]\n\
         \u{20}            [--shard-threads N] [--trace FILE.json] [--trace-ring N]\n\
         experiments: {} render\n\
         (fig5/fig7 also emit fig6/fig8; fig9-12 emit the fig13 panels;\n\
          figd1 runs on the sharded cluster; `--shard-threads` drives its\n\
          shards in parallel without changing any byte of the output;\n\
          fige1 compares OS / LACHESIS-QS / DEADLINE on SLO-miss rate;\n\
          `render` redraws SVG charts from JSON already in --out;\n\
          `--trace` runs one traced representative trial per experiment and\n\
          writes Perfetto-openable Chrome trace_event JSON plus a text\n\
          summary; `--trace-ring` bounds the trace to the last N records)",
        ALL.join(" ")
    );
    std::process::exit(2)
}

fn run_experiment(id: &str, opts: &ExpOptions) -> Vec<Figure> {
    match id {
        "fig1" => scale_out::fig1(opts),
        "fig5" => single_query::run(&single_query::fig5(), opts),
        "fig7" => single_query::run(&single_query::fig7(), opts),
        "fig9" => single_query::run(&single_query::fig9(), opts),
        "fig10" => single_query::run(&single_query::fig10(), opts),
        "fig11" => single_query::run(&single_query::fig11(), opts),
        "fig12" => single_query::run(&single_query::fig12(), opts),
        "fig13" => {
            // The four tail-latency panels come from the Figs. 9-12 runs.
            let mut figs = Vec::new();
            for exp in [
                single_query::fig9(),
                single_query::fig10(),
                single_query::fig11(),
                single_query::fig12(),
            ] {
                figs.extend(
                    single_query::run(&exp, opts)
                        .into_iter()
                        .filter(|f| f.id.starts_with("fig13")),
                );
            }
            figs
        }
        "fig14" => multi_query::fig14(opts),
        "fig15" => multi_query::fig15(opts),
        "fig16" => multi_query::fig16(opts),
        "fig17" => scale_out::fig17(opts),
        "fig18" => multi_spe::fig18(opts),
        "figc1" => chaos::figc1(opts),
        "figc2" => chaos::figc2(opts),
        "figc3" => churn::figc3(opts),
        "figd1" => rack::figd1(opts),
        "fige1" => deadline::fige1(opts),
        "figf1" => soak::figf1(opts),
        "ablation" => ablation::ablation(opts),
        _ => usage(),
    }
}

/// Rejects unknown experiment ids up front with an explicit error naming
/// the offender and the valid vocabulary (instead of silently falling
/// through to the usage text mid-run).
fn reject_unknown(experiments: &[String], extra: &[&str]) {
    if let Some(bad) = experiments
        .iter()
        .find(|e| !ALL.contains(&e.as_str()) && !extra.contains(&e.as_str()))
    {
        eprintln!("error: unknown experiment id '{bad}'");
        eprintln!(
            "valid ids: {}{}{}",
            ALL.join(" "),
            if extra.is_empty() { "" } else { " " },
            extra.join(" ")
        );
        usage();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiments: Vec<String> = Vec::new();
    let mut opts = ExpOptions::default();
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_ring: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {
                opts.quick = true;
                opts.reps = 1;
            }
            "--reps" => {
                i += 1;
                opts.reps = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                opts.out_dir = PathBuf::from(args.get(i).unwrap_or_else(|| usage()));
            }
            "--jobs" => {
                i += 1;
                opts.jobs = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--shard-threads" => {
                i += 1;
                opts.shard_threads =
                    args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--trace" => {
                i += 1;
                trace_out = Some(PathBuf::from(args.get(i).unwrap_or_else(|| usage())));
            }
            "--trace-ring" => {
                i += 1;
                trace_ring =
                    Some(args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage()));
            }
            "-h" | "--help" => usage(),
            other if other.starts_with('-') => usage(),
            other => experiments.push(other.to_owned()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        usage();
    }
    if experiments.iter().any(|e| e == "all") {
        experiments = ALL.iter().map(|s| s.to_string()).collect();
    }
    // `--trace`: run one traced representative trial per experiment id and
    // export everything into one Chrome trace file. Self-validates the
    // JSON shape and the summary's finiteness so CI can gate on the exit
    // code alone.
    if let Some(path) = &trace_out {
        reject_unknown(&experiments, &[]);
        let mut dumps = Vec::new();
        for id in &experiments {
            eprintln!(">> tracing {id} (quick={}, ring={trace_ring:?})", opts.quick);
            dumps.extend(bench::trace::traced_experiment(id, &opts, trace_ring));
        }
        let json = bench::trace::export_chrome(&dumps).compact();
        if let Err(e) = bench::trace::validate_chrome(&json) {
            eprintln!("error: trace failed shape validation: {e}");
            return ExitCode::FAILURE;
        }
        let summary = bench::trace::summarize(&dumps);
        if let Err(e) = bench::trace::validate_summary(&summary) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
        std::fs::write(path, &json).expect("write trace");
        println!("{summary}");
        eprintln!("wrote {} (open in https://ui.perfetto.dev)", path.display());
        return ExitCode::SUCCESS;
    }
    // `render` re-draws SVG charts from previously saved JSON results.
    if experiments.iter().any(|e| e == "render") {
        let mut count = 0;
        for entry in std::fs::read_dir(&opts.out_dir).expect("results dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "json")
                && path.file_name().is_none_or(|n| n != "table1.json")
            {
                let json = std::fs::read_to_string(&path).expect("read json");
                match bench::report::Figure::from_json(&json) {
                    Ok(fig) => {
                        let files = bench::svg::save_charts(&fig, &opts.out_dir)
                            .expect("write charts");
                        count += files.len();
                    }
                    Err(e) => eprintln!("warning: skipping {}: {e}", path.display()),
                }
            }
        }
        eprintln!("rendered {count} charts into {}", opts.out_dir.display());
        return ExitCode::SUCCESS;
    }
    reject_unknown(&experiments, &["fig13", "render"]);

    for id in &experiments {
        let start = std::time::Instant::now();
        eprintln!(">> running {id} (quick={}, reps={})", opts.quick, opts.reps);
        if id == "table1" {
            let rows = table1::rows(&opts);
            println!("{}", table1::render(&rows));
            std::fs::create_dir_all(&opts.out_dir).ok();
            let json = table1::to_json(&rows).pretty();
            std::fs::write(opts.out_dir.join("table1.json"), json).ok();
        } else {
            for fig in run_experiment(id, &opts) {
                println!("{}", fig.render());
                if let Err(e) = fig.save(&opts.out_dir) {
                    eprintln!("warning: could not save {}: {e}", fig.id);
                }
                match bench::svg::save_charts(&fig, &opts.out_dir) {
                    Ok(files) => eprintln!("   charts: {}", files.join(" ")),
                    Err(e) => eprintln!("warning: could not render {} charts: {e}", fig.id),
                }
            }
        }
        eprintln!("<< {id} done in {:.1?}", start.elapsed());
    }
    ExitCode::SUCCESS
}
