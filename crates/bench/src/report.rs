//! Figure/table assembly, terminal rendering and JSON output.

use std::fs;
use std::path::Path;

use serde::Serialize;

use crate::harness::Measured;

/// One x-position of a series.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// The x value (input rate, parallelism, % of max rate, ...).
    pub x: f64,
    /// The measurements at this point.
    pub m: Measured,
}

/// One line of a figure (a scheduler / configuration).
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending x.
    pub points: Vec<SweepPoint>,
}

/// A reproduced figure: several series over a common x-axis.
#[derive(Debug, Clone, Serialize, serde::Deserialize)]
pub struct Figure {
    /// Identifier, e.g. `"fig5"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The x-axis label.
    pub x_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form remarks (calibration notes, paper expectations).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str) -> Self {
        Figure {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Renders the figure as aligned text tables (one per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        #[allow(clippy::type_complexity)]
        let metrics: [(&str, fn(&Measured) -> f64); 4] = [
            ("throughput (t/s)", |m| m.throughput_tps),
            ("avg latency (s)", |m| m.latency_mean_s),
            ("avg e2e latency (s)", |m| m.e2e_mean_s),
            ("policy goal", |m| m.goal),
        ];
        for (name, get) in metrics {
            out.push_str(&format!("\n-- {name} --\n"));
            out.push_str(&format!("{:>12}", self.x_label));
            for s in &self.series {
                out.push_str(&format!(" {:>18}", s.label));
            }
            out.push('\n');
            let xs: Vec<f64> = self
                .series
                .first()
                .map(|s| s.points.iter().map(|p| p.x).collect())
                .unwrap_or_default();
            for (i, x) in xs.iter().enumerate() {
                out.push_str(&format!("{x:>12.1}"));
                for s in &self.series {
                    match s.points.get(i) {
                        Some(p) => out.push_str(&format!(" {:>18.6}", get(&p.m))),
                        None => out.push_str(&format!(" {:>18}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Writes the figure as JSON under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem and serialization errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self)?;
        fs::write(path, json)
    }
}

/// Pools queue-size samples into distribution statistics (Figs. 6/8):
/// `(p25, p50, p75, p95, p99, max)` over all per-operator samples.
pub fn queue_distribution(samples: &[Vec<usize>]) -> (f64, f64, f64, f64, f64, f64) {
    let mut all: Vec<usize> = samples.iter().flatten().copied().collect();
    if all.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
    all.sort_unstable();
    let q = |p: f64| -> f64 {
        let idx = ((all.len() - 1) as f64 * p).round() as usize;
        all[idx] as f64
    };
    (q(0.25), q(0.5), q(0.75), q(0.95), q(0.99), *all.last().unwrap() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(tput: f64) -> Measured {
        Measured {
            offered_tps: tput,
            throughput_tps: tput,
            latency_mean_s: 0.01,
            latency_p: (0.01, 0.02, 0.03),
            e2e_mean_s: 0.02,
            e2e_p: (0.02, 0.03, 0.04),
            goal: 1.0,
            queue_samples: vec![],
            utilization: 0.5,
            ctx_switches_per_s: 100.0,
            egress_tps: tput,
        }
    }

    #[test]
    fn render_contains_labels_and_values() {
        let mut fig = Figure::new("figX", "test", "rate");
        fig.series.push(Series {
            label: "OS".into(),
            points: vec![SweepPoint {
                x: 1000.0,
                m: measured(990.0),
            }],
        });
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("OS"));
        assert!(text.contains("990"));
    }

    #[test]
    fn queue_distribution_quantiles() {
        let samples = vec![(0..=100usize).collect::<Vec<_>>()];
        let (p25, p50, p75, p95, p99, max) = queue_distribution(&samples);
        assert_eq!(p25, 25.0);
        assert_eq!(p50, 50.0);
        assert_eq!(p75, 75.0);
        assert_eq!(p95, 95.0);
        assert_eq!(p99, 99.0);
        assert_eq!(max, 100.0);
        assert_eq!(queue_distribution(&[]), (0.0, 0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn save_writes_json() {
        let mut fig = Figure::new("figtest", "t", "x");
        fig.series.push(Series {
            label: "OS".into(),
            points: vec![],
        });
        let dir = std::env::temp_dir().join("lachesis-bench-test");
        fig.save(&dir).unwrap();
        let content = fs::read_to_string(dir.join("figtest.json")).unwrap();
        assert!(content.contains("\"id\": \"figtest\""));
    }
}
