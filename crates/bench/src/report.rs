//! Figure/table assembly, terminal rendering and JSON output.

use std::fs;
use std::path::Path;

use crate::harness::Measured;
use crate::json::Json;

/// One x-position of a series.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The x value (input rate, parallelism, % of max rate, ...).
    pub x: f64,
    /// The measurements at this point.
    pub m: Measured,
}

/// One line of a figure (a scheduler / configuration).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending x.
    pub points: Vec<SweepPoint>,
}

/// A reproduced figure: several series over a common x-axis.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Identifier, e.g. `"fig5"`.
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The x-axis label.
    pub x_label: String,
    /// The series.
    pub series: Vec<Series>,
    /// Free-form remarks (calibration notes, paper expectations).
    pub notes: Vec<String>,
}

impl Figure {
    /// Creates an empty figure.
    pub fn new(id: &str, title: &str, x_label: &str) -> Self {
        Figure {
            id: id.to_owned(),
            title: title.to_owned(),
            x_label: x_label.to_owned(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Renders the figure as aligned text tables (one per metric).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        type MetricRow<'a> = (&'a str, fn(&Measured) -> f64);
        let metrics: [MetricRow<'_>; 8] = [
            ("throughput (t/s)", |m| m.throughput_tps),
            ("avg latency (s)", |m| m.latency_mean_s),
            ("p50 latency (s)", |m| m.latency_p.0),
            ("p99 latency (s)", |m| m.latency_p.1),
            ("p99.9 latency (s)", |m| m.latency_p.2),
            ("avg e2e latency (s)", |m| m.e2e_mean_s),
            ("p99 e2e latency (s)", |m| m.e2e_p.1),
            ("policy goal", |m| m.goal),
        ];
        // The SLO table only appears when some point carries a target.
        let has_slo = self
            .series
            .iter()
            .any(|s| s.points.iter().any(|p| p.m.slo_target_s > 0.0));
        let mut rows: Vec<MetricRow<'_>> = metrics.to_vec();
        if has_slo {
            rows.push(("SLO miss rate", |m| m.slo_miss_rate));
        }
        for (name, get) in rows {
            out.push_str(&format!("\n-- {name} --\n"));
            out.push_str(&format!("{:>12}", self.x_label));
            for s in &self.series {
                out.push_str(&format!(" {:>18}", s.label));
            }
            out.push('\n');
            let xs: Vec<f64> = self
                .series
                .first()
                .map(|s| s.points.iter().map(|p| p.x).collect())
                .unwrap_or_default();
            for (i, x) in xs.iter().enumerate() {
                out.push_str(&format!("{x:>12.1}"));
                for s in &self.series {
                    match s.points.get(i) {
                        Some(p) => out.push_str(&format!(" {:>18.6}", get(&p.m))),
                        None => out.push_str(&format!(" {:>18}", "-")),
                    }
                }
                out.push('\n');
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Writes the figure as JSON under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        fs::write(path, self.to_json().pretty())
    }

    /// The figure as a JSON tree (the on-disk result format).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("id", Json::Str(self.id.clone())),
            ("title", Json::Str(self.title.clone())),
            ("x_label", Json::Str(self.x_label.clone())),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("label", Json::Str(s.label.clone())),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|p| {
                                                Json::obj(vec![
                                                    ("x", Json::Num(p.x)),
                                                    ("m", measured_to_json(&p.m)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(|n| Json::Str(n.clone())).collect()),
            ),
        ])
    }

    /// Parses a figure back from its JSON result file.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first syntax or shape problem.
    pub fn from_json(text: &str) -> Result<Figure, String> {
        let v = Json::parse(text)?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("figure is missing string field `{key}`"))
        };
        let series = v
            .get("series")
            .and_then(Json::as_arr)
            .ok_or("figure is missing `series` array")?
            .iter()
            .map(|s| {
                let label = s
                    .get("label")
                    .and_then(Json::as_str)
                    .ok_or("series is missing `label`")?
                    .to_owned();
                let points = s
                    .get("points")
                    .and_then(Json::as_arr)
                    .ok_or("series is missing `points`")?
                    .iter()
                    .map(|p| {
                        Ok(SweepPoint {
                            x: p.get("x").and_then(Json::as_f64).ok_or("point missing `x`")?,
                            m: measured_from_json(
                                p.get("m").ok_or("point missing `m`")?,
                            )?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?;
                Ok(Series { label, points })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let notes = v
            .get("notes")
            .and_then(Json::as_arr)
            .unwrap_or(&[])
            .iter()
            .filter_map(Json::as_str)
            .map(str::to_owned)
            .collect();
        Ok(Figure {
            id: str_field("id")?,
            title: str_field("title")?,
            x_label: str_field("x_label")?,
            series,
            notes,
        })
    }
}

fn measured_to_json(m: &Measured) -> Json {
    let triple = |t: (f64, f64, f64)| Json::Arr(vec![Json::Num(t.0), Json::Num(t.1), Json::Num(t.2)]);
    Json::obj(vec![
        ("offered_tps", Json::Num(m.offered_tps)),
        ("throughput_tps", Json::Num(m.throughput_tps)),
        ("latency_mean_s", Json::Num(m.latency_mean_s)),
        ("latency_p", triple(m.latency_p)),
        ("e2e_mean_s", Json::Num(m.e2e_mean_s)),
        ("e2e_p", triple(m.e2e_p)),
        ("slo_target_s", Json::Num(m.slo_target_s)),
        ("slo_miss_rate", Json::Num(m.slo_miss_rate)),
        ("goal", Json::Num(m.goal)),
        (
            "queue_samples",
            Json::Arr(
                m.queue_samples
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&q| Json::Num(q as f64)).collect()))
                    .collect(),
            ),
        ),
        ("utilization", Json::Num(m.utilization)),
        ("ctx_switches_per_s", Json::Num(m.ctx_switches_per_s)),
        ("egress_tps", Json::Num(m.egress_tps)),
    ])
}

fn measured_from_json(v: &Json) -> Result<Measured, String> {
    let num = |key: &str| -> Result<f64, String> {
        v.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("measurement is missing number `{key}`"))
    };
    // Percentile/SLO fields default to zero so figure JSON written before
    // they existed still parses (the `render` subcommand re-draws old
    // result directories).
    let num_or = |key: &str, default: f64| -> f64 {
        v.get(key).and_then(Json::as_f64).unwrap_or(default)
    };
    let triple = |key: &str| -> Result<(f64, f64, f64), String> {
        match v.get(key).and_then(Json::as_arr) {
            Some([a, b, c]) => Ok((
                a.as_f64().ok_or("non-numeric percentile")?,
                b.as_f64().ok_or("non-numeric percentile")?,
                c.as_f64().ok_or("non-numeric percentile")?,
            )),
            Some(_) => Err(format!("measurement triple `{key}` is not 3 numbers")),
            None => Ok((0.0, 0.0, 0.0)),
        }
    };
    let queue_samples = v
        .get("queue_samples")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or("queue sample row is not an array")?
                .iter()
                .map(|q| {
                    q.as_f64()
                        .map(|f| f as usize)
                        .ok_or_else(|| "non-numeric queue sample".to_owned())
                })
                .collect::<Result<Vec<_>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Measured {
        offered_tps: num("offered_tps")?,
        throughput_tps: num("throughput_tps")?,
        latency_mean_s: num("latency_mean_s")?,
        latency_p: triple("latency_p")?,
        e2e_mean_s: num("e2e_mean_s")?,
        e2e_p: triple("e2e_p")?,
        slo_target_s: num_or("slo_target_s", 0.0),
        slo_miss_rate: num_or("slo_miss_rate", 0.0),
        goal: num("goal")?,
        queue_samples,
        utilization: num("utilization")?,
        ctx_switches_per_s: num("ctx_switches_per_s")?,
        egress_tps: num("egress_tps")?,
    })
}

/// Pools queue-size samples into distribution statistics (Figs. 6/8):
/// `(p25, p50, p75, p95, p99, max)` over all per-operator samples.
pub fn queue_distribution(samples: &[Vec<usize>]) -> (f64, f64, f64, f64, f64, f64) {
    let mut all: Vec<usize> = samples.iter().flatten().copied().collect();
    if all.is_empty() {
        return (0.0, 0.0, 0.0, 0.0, 0.0, 0.0);
    }
    all.sort_unstable();
    let q = |p: f64| -> f64 {
        // Ceil nearest-rank — the same rule as `LogHistogram::quantile`
        // (smallest sample whose cumulative count reaches `ceil(p * n)`),
        // so figure percentiles and histogram percentiles agree. The old
        // `.round()` rule disagreed on tiny sample counts (e.g. the
        // median of two samples picked the upper one here, the lower one
        // in the histogram).
        let rank = (all.len() as f64 * p).ceil().max(1.0) as usize;
        all[rank.min(all.len()) - 1] as f64
    };
    (q(0.25), q(0.5), q(0.75), q(0.95), q(0.99), *all.last().unwrap() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured(tput: f64) -> Measured {
        Measured {
            offered_tps: tput,
            throughput_tps: tput,
            latency_mean_s: 0.01,
            latency_p: (0.01, 0.02, 0.03),
            e2e_mean_s: 0.02,
            e2e_p: (0.02, 0.03, 0.04),
            slo_target_s: 0.1,
            slo_miss_rate: 0.05,
            goal: 1.0,
            queue_samples: vec![],
            utilization: 0.5,
            ctx_switches_per_s: 100.0,
            egress_tps: tput,
        }
    }

    #[test]
    fn render_contains_labels_and_values() {
        let mut fig = Figure::new("figX", "test", "rate");
        fig.series.push(Series {
            label: "OS".into(),
            points: vec![SweepPoint {
                x: 1000.0,
                m: measured(990.0),
            }],
        });
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("OS"));
        assert!(text.contains("990"));
    }

    #[test]
    fn queue_distribution_quantiles() {
        let samples = vec![(0..=100usize).collect::<Vec<_>>()];
        let (p25, p50, p75, p95, p99, max) = queue_distribution(&samples);
        assert_eq!(p25, 25.0);
        assert_eq!(p50, 50.0);
        assert_eq!(p75, 75.0);
        assert_eq!(p95, 95.0);
        assert_eq!(p99, 99.0);
        assert_eq!(max, 100.0);
        assert_eq!(queue_distribution(&[]), (0.0, 0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn queue_distribution_tiny_samples_use_ceil_rank() {
        // n = 1: every percentile is the single sample.
        let (p25, p50, p75, p95, p99, max) = queue_distribution(&[vec![7]]);
        assert_eq!((p25, p50, p75, p95, p99, max), (7.0, 7.0, 7.0, 7.0, 7.0, 7.0));
        // n = 2: ceil nearest-rank puts the median on the LOWER sample
        // (rank ceil(2 * 0.5) = 1), matching `LogHistogram::quantile`;
        // the old `.round()` rule picked the upper one.
        let (p25, p50, p75, _, p99, max) = queue_distribution(&[vec![10, 20]]);
        assert_eq!(p25, 10.0);
        assert_eq!(p50, 10.0);
        assert_eq!(p75, 20.0);
        assert_eq!(p99, 20.0);
        assert_eq!(max, 20.0);
        // n = 3: median is the middle sample (rank ceil(1.5) = 2).
        let (p25, p50, p75, _, _, max) = queue_distribution(&[vec![1, 2, 3]]);
        assert_eq!(p25, 1.0);
        assert_eq!(p50, 2.0);
        assert_eq!(p75, 3.0);
        assert_eq!(max, 3.0);
        // Cross-check against the histogram's rule on the same data.
        let mut h = spe::LogHistogram::new();
        for v in [10.0, 20.0] {
            h.record(v);
        }
        let hist_p50 = h.quantile(0.5).unwrap();
        assert!(
            (hist_p50 - 10.0).abs() / 10.0 < 0.06,
            "histogram median of two picks the lower sample: {hist_p50}"
        );
    }

    #[test]
    fn figure_json_round_trips_percentiles_and_slo() {
        let mut fig = Figure::new("figrt", "round trip", "rate");
        let mut m = measured(500.0);
        m.latency_p = (0.001, 0.05, 0.2);
        m.e2e_p = (0.002, 0.08, 0.4);
        m.slo_target_s = 0.25;
        m.slo_miss_rate = 0.125;
        m.queue_samples = vec![vec![1, 2, 3], vec![4]];
        fig.series.push(Series {
            label: "DEADLINE".into(),
            points: vec![SweepPoint { x: 0.25, m }],
        });
        fig.notes.push("slo_order=PASS".into());
        let parsed = Figure::from_json(&fig.to_json().pretty()).unwrap();
        assert_eq!(parsed.id, fig.id);
        assert_eq!(parsed.notes, fig.notes);
        let (orig, back) = (&fig.series[0].points[0].m, &parsed.series[0].points[0].m);
        assert_eq!(back.latency_p, orig.latency_p);
        assert_eq!(back.e2e_p, orig.e2e_p);
        assert_eq!(back.slo_target_s, orig.slo_target_s);
        assert_eq!(back.slo_miss_rate, orig.slo_miss_rate);
        assert_eq!(back.queue_samples, orig.queue_samples);
        // And the round trip is a fixed point byte-wise.
        assert_eq!(parsed.to_json().pretty(), fig.to_json().pretty());
    }

    #[test]
    fn figure_json_without_percentile_fields_still_parses() {
        // Result JSON written before percentile/SLO fields existed: the
        // missing fields default to zero instead of failing the parse.
        let old = r#"{
            "id": "fig5", "title": "old", "x_label": "rate",
            "series": [{"label": "OS", "points": [{"x": 100.0, "m": {
                "offered_tps": 100.0, "throughput_tps": 99.0,
                "latency_mean_s": 0.01, "e2e_mean_s": 0.02,
                "goal": 1.5, "utilization": 0.5,
                "ctx_switches_per_s": 10.0, "egress_tps": 98.0
            }}]}],
            "notes": []
        }"#;
        let fig = Figure::from_json(old).expect("old JSON parses");
        let m = &fig.series[0].points[0].m;
        assert_eq!(m.throughput_tps, 99.0);
        assert_eq!(m.latency_p, (0.0, 0.0, 0.0));
        assert_eq!(m.e2e_p, (0.0, 0.0, 0.0));
        assert_eq!(m.slo_target_s, 0.0);
        assert_eq!(m.slo_miss_rate, 0.0);
        assert!(m.queue_samples.is_empty());
    }

    #[test]
    fn save_writes_json() {
        let mut fig = Figure::new("figtest", "t", "x");
        fig.series.push(Series {
            label: "OS".into(),
            points: vec![],
        });
        let dir = std::env::temp_dir().join("lachesis-bench-test");
        fig.save(&dir).unwrap();
        let content = fs::read_to_string(dir.join("figtest.json")).unwrap();
        assert!(content.contains("\"id\": \"figtest\""));
    }
}
