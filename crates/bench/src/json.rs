//! Minimal JSON tree, pretty-printer and parser.
//!
//! The build environment has no crates.io access, so result files are
//! written and read through this hand-rolled module instead of serde.
//! It covers exactly what the figure/table formats need: objects,
//! arrays, strings, finite numbers, booleans and null, with the same
//! 2-space pretty layout `serde_json::to_string_pretty` produced.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed or to-be-printed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values print as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value's elements, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with 2-space indentation and a trailing newline-free
    /// layout matching `serde_json::to_string_pretty`.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Prints without any whitespace. Used for large machine-read
    /// documents (trace exports run to hundreds of thousands of events,
    /// where indentation would triple the file size).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        let _ = write!(out, "{}.0", n.trunc() as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_str(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        _ => Err(format!("unexpected input at byte {pos}")),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_str(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed by our writers.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume the whole run up to the next quote or escape in
                // one step. Validating per-character with `from_utf8` on
                // the full remaining input is O(document) per character —
                // quadratic on large documents such as traces.
                let start = *pos;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] != b'"' && bytes[end] != b'\\' {
                    end += 1;
                }
                let run = std::str::from_utf8(&bytes[start..end])
                    .map_err(|_| format!("invalid utf-8 at byte {start}"))?;
                out.push_str(run);
                *pos = end;
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_str(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        // Last write wins on duplicate keys, like serde_json's map.
        if let Some(&i) = seen.get(&key) {
            pairs[i].1 = value;
        } else {
            seen.insert(key.clone(), pairs.len());
            pairs.push((key, value));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: control characters in strings (operator names, trace
    /// labels) must survive a compact→parse round trip as `\uXXXX`
    /// escapes — raw control bytes inside a JSON string are invalid and
    /// would corrupt exported trace artifacts.
    #[test]
    fn compact_escapes_control_characters() {
        let nasty = "a\u{0}b\u{1f}c\"d\\e\nf\rg\th\u{8}i\u{c}j";
        let v = Json::obj(vec![("s", Json::Str(nasty.into()))]);
        for text in [v.compact(), v.pretty()] {
            for (i, b) in text.bytes().enumerate() {
                assert!(
                    b >= 0x20 || b == b'\n',
                    "raw control byte {b:#04x} at {i} in {text:?}"
                );
            }
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
        assert!(v.compact().contains("\\u0000") && v.compact().contains("\\u001f"));
    }

    /// Regression: string parsing must consume plain runs in one step.
    /// The old per-character path re-validated the entire remaining
    /// document for every character, which made parsing large documents
    /// (e.g. exported traces) quadratic — this test would hang for
    /// minutes under that implementation.
    #[test]
    fn parses_large_string_heavy_documents_in_linear_time() {
        let long = "x".repeat(50_000);
        let v = Json::Arr(
            (0..20)
                .map(|i| {
                    Json::obj(vec![
                        ("name", Json::Str(format!("thread-{i} {long} µs→ns"))),
                        ("n", Json::Num(i as f64)),
                    ])
                })
                .collect(),
        );
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
        let back = Json::parse(&v.compact()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::obj(vec![
            ("id", Json::Str("fig5".into())),
            (
                "series",
                Json::Arr(vec![Json::obj(vec![
                    ("label", Json::Str("OS \"default\"".into())),
                    ("xs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
                ])]),
            ),
            ("empty", Json::Arr(vec![])),
            ("flag", Json::Bool(true)),
            ("missing", Json::Null),
        ]);
        let text = v.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\\n\" : [ -1.5e2 , \"\\u0041\" ] } ").unwrap();
        assert_eq!(v.get("a\n").unwrap().as_arr().unwrap()[0], Json::Num(-150.0));
        assert_eq!(v.get("a\n").unwrap().as_arr().unwrap()[1], Json::Str("A".into()));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn integers_print_with_decimal_point() {
        assert_eq!(Json::Num(990.0).pretty(), "990.0");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
    }
}
