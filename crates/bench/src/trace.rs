//! Trace capture and export: Chrome `trace_event` JSON (openable in
//! Perfetto or `chrome://tracing`) plus a compact text summary.
//!
//! The simulation layers emit [`TraceRecord`]s into a shared
//! `simos::TraceBuffer`; this module snapshots the buffer together with
//! the id → name tables needed to render it ([`TraceDump`]), and turns
//! dumps into the two export formats. Dumps are plain data (`Send`), so
//! traced trials can run through [`crate::pool::parallel_map`] and still
//! fold back in input order — trace artifacts are byte-identical for any
//! `--jobs` value, like every other emitted artifact.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::rc::Rc;

use simos::{
    CallbackId, Kernel, NetFaultPlan, NetTopology, NetVerdict, NodeId, SimDuration, TraceEvent,
    TraceHandle, TraceRecord, TraceTrack,
};
use spe::Counter;

use crate::cluster::{DeliveryRecord, DropRecord, MsgKind};
use crate::harness::{GoalKind, RunConfig};
use crate::json::Json;
use crate::schedulers::{run_traced_point, PointSpec, PolicyChoice, Sched, TraceOpts, TranslatorChoice};
use crate::ExpOptions;

/// One thread's identity in a [`TraceDump`].
#[derive(Debug, Clone)]
pub struct ThreadMeta {
    /// Raw thread id (matches `ThreadId::as_u64`).
    pub tid: u64,
    /// Thread name at capture time.
    pub name: String,
    /// Index of the node the thread runs on.
    pub node: u64,
}

/// One node's identity in a [`TraceDump`].
#[derive(Debug, Clone)]
pub struct NodeMeta {
    /// Node index.
    pub index: u64,
    /// Node name.
    pub name: String,
    /// Number of CPUs.
    pub cpus: usize,
}

/// A drained trace plus the name tables needed to render it. Contains no
/// `Rc`/`RefCell`, so it can cross the worker-pool boundary.
#[derive(Debug, Clone)]
pub struct TraceDump {
    /// Human-readable label (summary headers, Perfetto process names).
    pub label: String,
    /// Every thread ever spawned on the kernel.
    pub threads: Vec<ThreadMeta>,
    /// Every node of the kernel.
    pub nodes: Vec<NodeMeta>,
    /// The drained records, oldest first.
    pub records: Vec<TraceRecord>,
    /// Records evicted by ring mode before capture.
    pub dropped: u64,
}

/// Snapshots the kernel's name tables and drains the trace buffer into a
/// renderable [`TraceDump`].
pub fn capture(kernel: &Kernel, handle: &TraceHandle, label: &str) -> TraceDump {
    let threads = kernel
        .thread_ids()
        .filter_map(|tid| kernel.thread_info(tid).ok())
        .map(|info| ThreadMeta {
            tid: info.id.as_u64(),
            name: info.name,
            node: info.node.as_u64(),
        })
        .collect();
    let nodes = (0..kernel.node_count())
        .filter_map(|i| {
            let stats = kernel.node_stats(NodeId::from_u64(i as u64)).ok()?;
            Some(NodeMeta {
                index: i as u64,
                name: stats.name,
                cpus: stats.cpus,
            })
        })
        .collect();
    let mut buf = handle.borrow_mut();
    TraceDump {
        label: label.to_owned(),
        threads,
        nodes,
        records: buf.drain(),
        dropped: buf.dropped(),
    }
}

/// Sampling period of [`install_counter_samplers`].
const SAMPLE_PERIOD: SimDuration = SimDuration::from_millis(500);

/// Installs a periodic activity that samples per-node CPU utilization
/// (via [`Counter::rate_since`] over cumulative busy nanoseconds) and
/// runqueue depth, emitting `Counter` trace events every 500 ms of sim
/// time. Returns the callback id so callers can cancel the sampler.
pub fn install_counter_samplers(kernel: &mut Kernel, handle: &TraceHandle) -> CallbackId {
    let nodes: Vec<NodeId> = (0..kernel.node_count())
        .map(|i| NodeId::from_u64(i as u64))
        .collect();
    let handle = Rc::clone(handle);
    let mut busy: Vec<(Counter, u64)> = nodes.iter().map(|_| (Counter::new(), 0)).collect();
    kernel.schedule_periodic(SAMPLE_PERIOD, SAMPLE_PERIOD, move |k| {
        for (i, &node) in nodes.iter().enumerate() {
            let Ok(per_cpu) = k.cpu_busy(node) else {
                continue;
            };
            let cpus = per_cpu.len().max(1);
            let total: u64 = per_cpu.iter().map(|d| d.as_nanos()).sum();
            let (counter, prev) = &mut busy[i];
            counter.add(total.saturating_sub(counter.total()));
            // busy-ns per second, spread over the CPUs → fraction in [0, 1].
            let util = counter.rate_since(*prev, SAMPLE_PERIOD) / 1e9 / cpus as f64;
            *prev = counter.total();
            let depth = k.runqueue_depth(node).unwrap_or(0);
            let mut buf = handle.borrow_mut();
            buf.push(
                k.now(),
                TraceEvent::Counter {
                    track: TraceTrack::Node(node.as_u64()),
                    name: "cpu_util",
                    value: util,
                },
            );
            buf.push(
                k.now(),
                TraceEvent::Counter {
                    track: TraceTrack::Node(node.as_u64()),
                    name: "rq_depth",
                    value: depth as f64,
                },
            );
        }
    })
}

// ---------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------

/// Each dump claims a block of `pid`s so several trials can share one
/// trace file side by side.
const PID_STRIDE: u64 = 10;
/// CPU lane `tid`s are `node * CPU_LANE_STRIDE + cpu`.
const CPU_LANE_STRIDE: u64 = 64;

/// The three process lanes of one dump: CPUs, operator threads, Lachesis.
fn pids(dump_idx: u64) -> (u64, u64, u64) {
    let base = dump_idx * PID_STRIDE;
    (base + 1, base + 2, base + 3)
}

/// One contiguous occupancy of a CPU by a thread, synthesized from
/// `Switch`/`Block`/`Preempt`/`SliceExpire` events. Back-to-back
/// re-dispatches of the same thread are merged into one slice.
struct Slice {
    node: u64,
    cpu: usize,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
}

fn cpu_slices(dump: &TraceDump) -> Vec<Slice> {
    let mut open: BTreeMap<(u64, usize), (u64, u64)> = BTreeMap::new();
    let mut slices = Vec::new();
    let mut last_ts = 0u64;
    for rec in &dump.records {
        let ts = rec.at.as_nanos();
        last_ts = last_ts.max(ts);
        match &rec.event {
            TraceEvent::Switch {
                node, cpu, next, ..
            } => {
                let key = (*node, *cpu);
                let next = next.as_u64();
                match open.get(&key) {
                    // Same thread re-dispatched: extend the open slice.
                    Some(&(_, cur)) if cur == next => {}
                    Some(&(start, cur)) => {
                        slices.push(Slice {
                            node: key.0,
                            cpu: key.1,
                            tid: cur,
                            start_ns: start,
                            end_ns: ts,
                        });
                        open.insert(key, (ts, next));
                    }
                    None => {
                        open.insert(key, (ts, next));
                    }
                }
            }
            TraceEvent::Block { node, cpu, tid, .. }
            | TraceEvent::Exit { node, cpu, tid }
            | TraceEvent::Preempt { node, cpu, tid }
            | TraceEvent::SliceExpire { node, cpu, tid } => {
                let key = (*node, *cpu);
                if let Some(&(start, cur)) = open.get(&key) {
                    if cur == tid.as_u64() {
                        slices.push(Slice {
                            node: key.0,
                            cpu: key.1,
                            tid: cur,
                            start_ns: start,
                            end_ns: ts,
                        });
                        open.remove(&key);
                    }
                }
            }
            _ => {}
        }
    }
    // Close whatever is still running at the end of the trace.
    for ((node, cpu), (start, tid)) in open {
        slices.push(Slice {
            node,
            cpu,
            tid,
            start_ns: start,
            end_ns: last_ts.max(start),
        });
    }
    slices
}

fn meta_event(kind: &str, pid: u64, tid: u64, name: &str) -> Json {
    Json::obj(vec![
        ("name", Json::Str(kind.into())),
        ("ph", Json::Str("M".into())),
        ("ts", Json::Num(0.0)),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(tid as f64)),
        ("args", Json::obj(vec![("name", Json::Str(name.into()))])),
    ])
}

fn num_args(args: &[(&'static str, f64)]) -> Json {
    Json::Obj(
        args.iter()
            .map(|&(k, v)| (k.to_owned(), Json::Num(v)))
            .collect(),
    )
}

/// A `B`/`E`/`i` event; instants carry thread scope (`"s": "t"`).
fn phase_event(
    name: &str,
    cat: &str,
    ph: &str,
    ts_ns: u64,
    pid: u64,
    tid: u64,
    args: &[(&'static str, f64)],
) -> Json {
    let mut pairs = vec![
        ("name", Json::Str(name.into())),
        ("cat", Json::Str(cat.into())),
        ("ph", Json::Str(ph.into())),
        ("ts", Json::Num(ts_ns as f64 / 1e3)),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(tid as f64)),
    ];
    if ph == "i" {
        pairs.push(("s", Json::Str("t".into())));
    }
    if !args.is_empty() {
        pairs.push(("args", num_args(args)));
    }
    Json::obj(pairs)
}

/// Maps an upper-layer track to its (pid, tid) lane within a dump.
fn track_lane(track: &TraceTrack, thr_pid: u64, mid_pid: u64) -> (u64, u64, &'static str) {
    match track {
        TraceTrack::Thread(t) => (thr_pid, t.as_u64(), "spe"),
        TraceTrack::Middleware => (mid_pid, 0, "lachesis"),
        TraceTrack::Supervisor => (mid_pid, 1, "lachesis"),
        TraceTrack::Node(_) => (mid_pid, 2, "metrics"),
    }
}

fn append_dump(events: &mut Vec<Json>, idx: u64, dump: &TraceDump) {
    let (cpu_pid, thr_pid, mid_pid) = pids(idx);
    let thread_name: BTreeMap<u64, &str> =
        dump.threads.iter().map(|t| (t.tid, t.name.as_str())).collect();

    events.push(meta_event("process_name", cpu_pid, 0, &format!("{}: cpus", dump.label)));
    events.push(meta_event("process_name", thr_pid, 0, &format!("{}: operators", dump.label)));
    events.push(meta_event("process_name", mid_pid, 0, &format!("{}: lachesis", dump.label)));
    for n in &dump.nodes {
        for cpu in 0..n.cpus {
            events.push(meta_event(
                "thread_name",
                cpu_pid,
                n.index * CPU_LANE_STRIDE + cpu as u64,
                &format!("{} cpu{cpu}", n.name),
            ));
        }
    }
    for t in &dump.threads {
        events.push(meta_event("thread_name", thr_pid, t.tid, &t.name));
    }
    events.push(meta_event("thread_name", mid_pid, 0, "middleware"));
    events.push(meta_event("thread_name", mid_pid, 1, "supervisor"));
    events.push(meta_event("thread_name", mid_pid, 2, "cgroups"));

    for s in cpu_slices(dump) {
        let name = thread_name.get(&s.tid).copied().unwrap_or("?");
        events.push(Json::obj(vec![
            ("name", Json::Str(name.into())),
            ("cat", Json::Str("kernel".into())),
            ("ph", Json::Str("X".into())),
            ("ts", Json::Num(s.start_ns as f64 / 1e3)),
            ("dur", Json::Num((s.end_ns - s.start_ns) as f64 / 1e3)),
            ("pid", Json::Num(cpu_pid as f64)),
            ("tid", Json::Num((s.node * CPU_LANE_STRIDE + s.cpu as u64) as f64)),
            ("args", num_args(&[("thread", s.tid as f64)])),
        ]));
    }

    for rec in &dump.records {
        let ts = rec.at.as_nanos();
        match &rec.event {
            // Consumed by the CPU slices above.
            TraceEvent::Switch { .. }
            | TraceEvent::Block { .. }
            | TraceEvent::Exit { .. }
            | TraceEvent::Preempt { .. }
            | TraceEvent::SliceExpire { .. } => {}
            TraceEvent::Wake { tid } => {
                events.push(phase_event("wake", "kernel", "i", ts, thr_pid, tid.as_u64(), &[]));
            }
            TraceEvent::NiceChange { tid, nice } => {
                events.push(phase_event(
                    "nice",
                    "kernel",
                    "i",
                    ts,
                    thr_pid,
                    tid.as_u64(),
                    &[("nice", *nice as f64)],
                ));
            }
            TraceEvent::SharesChange { cgroup, shares } => {
                events.push(phase_event(
                    "cpu.shares",
                    "kernel",
                    "i",
                    ts,
                    mid_pid,
                    2,
                    &[("cgroup", cgroup.as_u64() as f64), ("shares", *shares as f64)],
                ));
            }
            TraceEvent::Migration { tid, cgroup } => {
                events.push(phase_event(
                    "migrate",
                    "kernel",
                    "i",
                    ts,
                    mid_pid,
                    2,
                    &[("thread", tid.as_u64() as f64), ("cgroup", cgroup.as_u64() as f64)],
                ));
            }
            TraceEvent::CpuOffline { node, cpu } => {
                events.push(phase_event(
                    "cpu_offline",
                    "kernel",
                    "i",
                    ts,
                    cpu_pid,
                    *node * CPU_LANE_STRIDE + *cpu as u64,
                    &[],
                ));
            }
            TraceEvent::CpuOnline { node, cpu } => {
                events.push(phase_event(
                    "cpu_online",
                    "kernel",
                    "i",
                    ts,
                    cpu_pid,
                    *node * CPU_LANE_STRIDE + *cpu as u64,
                    &[],
                ));
            }
            TraceEvent::SpanBegin { track, name, args } => {
                let (pid, tid, cat) = track_lane(track, thr_pid, mid_pid);
                events.push(phase_event(name, cat, "B", ts, pid, tid, args));
            }
            TraceEvent::SpanEnd { track, name, args } => {
                let (pid, tid, cat) = track_lane(track, thr_pid, mid_pid);
                events.push(phase_event(name, cat, "E", ts, pid, tid, args));
            }
            TraceEvent::Instant { track, name, args } => {
                let (pid, tid, cat) = track_lane(track, thr_pid, mid_pid);
                events.push(phase_event(name, cat, "i", ts, pid, tid, args));
            }
            TraceEvent::Counter { track, name, value } => {
                let node = match track {
                    TraceTrack::Node(n) => *n,
                    _ => 0,
                };
                events.push(Json::obj(vec![
                    ("name", Json::Str(format!("node{node} {name}"))),
                    ("cat", Json::Str("metrics".into())),
                    ("ph", Json::Str("C".into())),
                    ("ts", Json::Num(ts as f64 / 1e3)),
                    ("pid", Json::Num(cpu_pid as f64)),
                    ("tid", Json::Num(0.0)),
                    ("args", num_args(&[("value", *value)])),
                ]));
            }
        }
    }
}

/// Renders dumps as one Chrome `trace_event` JSON document (object form,
/// `traceEvents` array; timestamps in microseconds).
pub fn export_chrome(dumps: &[TraceDump]) -> Json {
    let mut events = Vec::new();
    for (i, dump) in dumps.iter().enumerate() {
        append_dump(&mut events, i as u64, dump);
    }
    Json::obj(vec![
        ("traceEvents", Json::Arr(events)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ])
}

/// Validates the shape of a Chrome-trace document: a `traceEvents` array
/// where every event is an object carrying `ph` (string), finite `ts`,
/// `pid` and `tid` numbers. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformed event.
pub fn validate_chrome(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing traceEvents array")?;
    for (i, ev) in events.iter().enumerate() {
        for key in ["ts", "pid", "tid"] {
            let v = ev
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric '{key}'"))?;
            if !v.is_finite() {
                return Err(format!("event {i}: non-finite '{key}'"));
            }
        }
        ev.get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing 'ph'"))?;
    }
    Ok(events.len())
}

// ---------------------------------------------------------------------
// Hotplug shape validation
// ---------------------------------------------------------------------

/// Counts of the fault-relevant events found by [`validate_hotplug`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotplugStats {
    /// Number of `CpuOffline` events.
    pub offlines: u64,
    /// Number of `CpuOnline` events.
    pub onlines: u64,
    /// Number of `Migration` (cgroup move) events.
    pub migrations: u64,
}

/// Validates the hotplug shape of a trace from the raw records alone:
/// replaying per-CPU occupancy (from `Switch`/`Block`/`Preempt`/
/// `SliceExpire`) in record order, every `CpuOffline` must find its CPU
/// vacated — the kernel preempts the occupant *before* the offline event
/// at the same instant — and no thread may be dispatched onto a CPU
/// inside its offline window. This is the "CPU-offline strands zero
/// threads" acceptance check, asserted purely from the trace.
///
/// # Errors
///
/// Returns a description of the first violation: a thread still occupying
/// a CPU when it goes offline, a dispatch onto a dead CPU, or a
/// double-offline/double-online of the same CPU.
pub fn validate_hotplug(dump: &TraceDump) -> Result<HotplugStats, String> {
    let mut stats = HotplugStats::default();
    // (node, cpu) -> occupant tid, for CPUs currently running something.
    let mut occupant: BTreeMap<(u64, usize), u64> = BTreeMap::new();
    let mut offline: BTreeSet<(u64, usize)> = BTreeSet::new();
    for rec in &dump.records {
        let at = rec.at.as_secs_f64();
        match &rec.event {
            TraceEvent::Switch { node, cpu, next, .. } => {
                if offline.contains(&(*node, *cpu)) {
                    return Err(format!(
                        "thread {} dispatched onto offline cpu {node}/{cpu} at {at:.6}s",
                        next.as_u64()
                    ));
                }
                occupant.insert((*node, *cpu), next.as_u64());
            }
            TraceEvent::Block { node, cpu, .. }
            | TraceEvent::Preempt { node, cpu, .. }
            | TraceEvent::SliceExpire { node, cpu, .. } => {
                occupant.remove(&(*node, *cpu));
            }
            TraceEvent::CpuOffline { node, cpu } => {
                stats.offlines += 1;
                if let Some(tid) = occupant.get(&(*node, *cpu)) {
                    return Err(format!(
                        "thread {tid} left on cpu {node}/{cpu} going offline at {at:.6}s"
                    ));
                }
                if !offline.insert((*node, *cpu)) {
                    return Err(format!("double offline of cpu {node}/{cpu} at {at:.6}s"));
                }
            }
            TraceEvent::CpuOnline { node, cpu } => {
                stats.onlines += 1;
                if !offline.remove(&(*node, *cpu)) {
                    return Err(format!(
                        "online of cpu {node}/{cpu} that was not offline at {at:.6}s"
                    ));
                }
            }
            TraceEvent::Migration { .. } => stats.migrations += 1,
            _ => {}
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// Starvation validation
// ---------------------------------------------------------------------

/// What [`validate_no_starvation`] measured while replaying the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StarvationStats {
    /// Number of runnable→dispatched wait intervals measured.
    pub waits: u64,
    /// The longest such wait, in seconds.
    pub max_wait_s: f64,
}

/// Validates, from the raw records alone, that no runnable thread waited
/// longer than `max_wait` for a CPU — the figc3 "no starvation" verdict.
///
/// The replay tracks per-thread runnable intervals: `Wake` opens one
/// (unless the thread is running), `Preempt`/`SliceExpire` re-open one
/// (the thread lost its CPU but still wants it, as does a `Switch` whose
/// `prev` was not descheduled by an explicit event), `Switch{next}`
/// closes it (measuring the wait) and `Block` cancels it (the thread
/// stopped being runnable). A wait still open at the end of the trace is
/// measured against the last record's timestamp (zero-length waits opened
/// by the final record itself are ignored).
///
/// # Errors
///
/// Returns a description of the first wait exceeding `max_wait`, or of a
/// truncated ring (dropped records would make the replay unsound).
pub fn validate_no_starvation(
    dump: &TraceDump,
    max_wait: SimDuration,
) -> Result<StarvationStats, String> {
    if dump.dropped > 0 {
        return Err(format!(
            "{} records dropped: ring too small for a sound starvation replay",
            dump.dropped
        ));
    }
    let lim = max_wait.as_nanos();
    let mut stats = StarvationStats::default();
    // tid -> runnable-since nanos, for threads waiting for a CPU.
    let mut waiting: BTreeMap<u64, u64> = BTreeMap::new();
    let mut running: BTreeSet<u64> = BTreeSet::new();
    let check = |tid: u64, since: u64, now: u64, stats: &mut StarvationStats| {
        let w = now.saturating_sub(since);
        stats.waits += 1;
        stats.max_wait_s = stats.max_wait_s.max(w as f64 / 1e9);
        if w > lim {
            return Err(format!(
                "thread {tid} runnable since {:.3}s waited {:.3}s (> {:.3}s) for a CPU",
                since as f64 / 1e9,
                w as f64 / 1e9,
                lim as f64 / 1e9,
            ));
        }
        Ok(())
    };
    let mut last = 0u64;
    for rec in &dump.records {
        let now = rec.at.as_nanos();
        last = now;
        match &rec.event {
            TraceEvent::Switch { prev, next, .. } => {
                let n = next.as_u64();
                if let Some(since) = waiting.remove(&n) {
                    check(n, since, now, &mut stats)?;
                }
                if let Some(p) = prev {
                    let p = p.as_u64();
                    // A prev not already descheduled by Block/Preempt/
                    // SliceExpire was displaced while still runnable.
                    if p != n && running.remove(&p) {
                        waiting.insert(p, now);
                    }
                }
                running.insert(n);
            }
            TraceEvent::Wake { tid } => {
                let t = tid.as_u64();
                if !running.contains(&t) {
                    waiting.entry(t).or_insert(now);
                }
            }
            TraceEvent::Preempt { tid, .. } | TraceEvent::SliceExpire { tid, .. } => {
                let t = tid.as_u64();
                running.remove(&t);
                waiting.entry(t).or_insert(now);
            }
            TraceEvent::Block { tid, .. } | TraceEvent::Exit { tid, .. } => {
                let t = tid.as_u64();
                running.remove(&t);
                waiting.remove(&t);
            }
            _ => {}
        }
    }
    for (&tid, &since) in &waiting {
        // A wait opened by the final record has zero observed length
        // (e.g. the prev displaced by the trace's last Switch) and says
        // nothing about starvation.
        if since < last {
            check(tid, since, last, &mut stats)?;
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------
// Text summary
// ---------------------------------------------------------------------

/// Renders a compact text summary of each dump: per-thread CPU share,
/// context-switch counts and the supervisor timeline. Every number
/// printed is finite (enforced by [`validate_summary`] in CI).
pub fn summarize(dumps: &[TraceDump]) -> String {
    let mut out = String::new();
    for dump in dumps {
        summarize_one(&mut out, dump);
    }
    out
}

fn summarize_one(out: &mut String, dump: &TraceDump) {
    let first = dump.records.first().map_or(0, |r| r.at.as_nanos());
    let last = dump.records.last().map_or(first, |r| r.at.as_nanos());
    let span_s = last.saturating_sub(first) as f64 / 1e9;
    let total_cpus: usize = dump.nodes.iter().map(|n| n.cpus).sum();
    let capacity_s = span_s * total_cpus.max(1) as f64;

    let mut busy_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for s in cpu_slices(dump) {
        *busy_ns.entry(s.tid).or_insert(0) += s.end_ns - s.start_ns;
    }
    let mut switches: BTreeMap<u64, u64> = BTreeMap::new();
    let mut total_switches = 0u64;
    let mut rounds = 0u64;
    for rec in &dump.records {
        match &rec.event {
            TraceEvent::Switch { next, fresh: true, .. } => {
                *switches.entry(next.as_u64()).or_insert(0) += 1;
                total_switches += 1;
            }
            TraceEvent::SpanBegin {
                track: TraceTrack::Middleware,
                name: "round",
                ..
            } => rounds += 1,
            _ => {}
        }
    }

    let _ = writeln!(out, "== trace: {} ==", dump.label);
    let _ = writeln!(
        out,
        "events: {} (dropped: {})  span: {:.3}s  cpus: {}",
        dump.records.len(),
        dump.dropped,
        span_s,
        total_cpus
    );
    let _ = writeln!(out, "per-thread CPU share:");
    for t in &dump.threads {
        let busy_s = *busy_ns.get(&t.tid).unwrap_or(&0) as f64 / 1e9;
        let share = if capacity_s > 0.0 {
            busy_s / capacity_s * 100.0
        } else {
            0.0
        };
        let sw = *switches.get(&t.tid).unwrap_or(&0);
        let _ = writeln!(
            out,
            "  {:<28} {:>9.3}s {:>6.2}% {:>8} switches",
            t.name, busy_s, share, sw
        );
    }
    let _ = writeln!(out, "context switches: {total_switches}");
    let _ = writeln!(out, "middleware rounds: {rounds}");
    let _ = writeln!(out, "supervisor timeline:");
    let mut saw_supervisor = false;
    for rec in &dump.records {
        if let TraceEvent::Instant {
            track: TraceTrack::Supervisor,
            name,
            args,
        } = &rec.event
        {
            saw_supervisor = true;
            let _ = write!(out, "  {:>9.3}s  {name}", rec.at.as_secs_f64());
            for (k, v) in args {
                let _ = write!(out, "  {k}={v}");
            }
            let _ = writeln!(out);
        }
    }
    if !saw_supervisor {
        let _ = writeln!(out, "  (no supervisor events)");
    }
}

/// Returns an error if the text summary contains a non-finite value
/// (`NaN`/`inf`); the CI traced-chaos job gates on this.
///
/// # Errors
///
/// Returns the offending token.
pub fn validate_summary(summary: &str) -> Result<(), String> {
    // Token-wise, not substring: "tenant" contains "nan" and must pass.
    for token in summary.split(|c: char| !(c.is_ascii_alphanumeric() || c == '.' || c == '-')) {
        if matches!(token, "NaN" | "nan" | "-NaN" | "-nan" | "inf" | "-inf") {
            return Err(format!("summary contains non-finite value ({token})"));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Traced experiment runners (`repro --trace`)
// ---------------------------------------------------------------------

/// Runs one traced representative trial of an experiment id and returns
/// its dumps. `figc1` runs the faulted chaos trials (supervisor health
/// transitions in the trace); every other id runs the single-query ETL
/// point under LACHESIS-QS/nice. A single flag covers all experiments
/// because the trace captures *mechanisms* (kernel switches, middleware
/// rounds, supervisor transitions) rather than figure-specific sweeps.
pub fn traced_experiment(id: &str, opts: &ExpOptions, ring: Option<usize>) -> Vec<TraceDump> {
    match id {
        "figc1" => crate::experiments::chaos::trace_figc1(opts, ring),
        "figc2" => crate::experiments::chaos::trace_figc2(opts, ring),
        "figc3" => crate::experiments::churn::trace_figc3(opts, ring),
        "figf1" => crate::experiments::soak::trace_figf1(opts, ring),
        _ => vec![traced_single_query(id, opts, ring)],
    }
}

/// One traced single-query trial: ETL on Storm at 1500 t/s under
/// LACHESIS-QS with the nice translator. A single seeded trial, so the
/// output is trivially identical for any `--jobs` value.
pub fn traced_single_query(id: &str, opts: &ExpOptions, ring: Option<usize>) -> TraceDump {
    let cfg = if opts.quick {
        RunConfig::quick(GoalKind::QueueSizeVariance)
    } else {
        RunConfig::full(GoalKind::QueueSizeVariance)
    };
    let spec = PointSpec {
        graph: Box::new(queries::etl),
        engine: spe::SpeKind::Storm,
        sched: Sched::Lachesis(PolicyChoice::Qs, TranslatorChoice::Nice),
        rate: 1500.0,
        seed: 1,
        cfg,
        blocking: None,
        downstream: vec![],
    };
    let (_, _, dump) = run_traced_point(
        spec,
        TraceOpts {
            ring,
            label: format!("{id}: ETL@1500 LACHESIS-QS seed=1"),
        },
    );
    dump
}

/// Splits one shard's dump into per-node dumps so [`export_chrome`] gives
/// every rack node its own `pid` block in Perfetto (a cluster run renders
/// as one process per simulated machine instead of one undifferentiated
/// kernel). Events that belong to no node — middleware/supervisor lanes,
/// cgroup shares changes — land in the first node's dump, which also
/// keeps the drop counter so nothing is double-reported. Splitting is a
/// pure partition: concatenating the outputs' records (in node order) is
/// a permutation of the input's.
pub fn split_by_node(dump: &TraceDump) -> Vec<TraceDump> {
    if dump.nodes.len() <= 1 {
        return vec![dump.clone()];
    }
    let thread_node: BTreeMap<u64, u64> = dump
        .threads
        .iter()
        .map(|t| (t.tid, t.node))
        .collect();
    let first = dump.nodes[0].index;
    let node_of = |event: &TraceEvent| -> u64 {
        let by_tid = |tid: u64| thread_node.get(&tid).copied().unwrap_or(first);
        let by_track = |track: &TraceTrack| match track {
            TraceTrack::Thread(tid) => by_tid(tid.as_u64()),
            TraceTrack::Node(node) => *node,
            TraceTrack::Middleware | TraceTrack::Supervisor => first,
        };
        match event {
            TraceEvent::Switch { node, .. }
            | TraceEvent::Block { node, .. }
            | TraceEvent::Exit { node, .. }
            | TraceEvent::Preempt { node, .. }
            | TraceEvent::SliceExpire { node, .. }
            | TraceEvent::CpuOffline { node, .. }
            | TraceEvent::CpuOnline { node, .. } => *node,
            TraceEvent::Wake { tid } => by_tid(tid.as_u64()),
            TraceEvent::NiceChange { tid, .. } => by_tid(tid.as_u64()),
            TraceEvent::Migration { tid, .. } => by_tid(tid.as_u64()),
            TraceEvent::SharesChange { .. } => first,
            TraceEvent::SpanBegin { track, .. }
            | TraceEvent::SpanEnd { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Counter { track, .. } => by_track(track),
        }
    };
    dump.nodes
        .iter()
        .map(|meta| TraceDump {
            label: format!("{} / {}", dump.label, meta.name),
            threads: dump
                .threads
                .iter()
                .filter(|t| t.node == meta.index)
                .cloned()
                .collect(),
            nodes: vec![meta.clone()],
            records: dump
                .records
                .iter()
                .filter(|r| node_of(&r.event) == meta.index)
                .cloned()
                .collect(),
            dropped: if meta.index == first { dump.dropped } else { 0 },
        })
        .collect()
}

/// What a clean cluster journal contained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Total deliveries replayed.
    pub deliveries: u64,
    /// Data tuples among them.
    pub tuples: u64,
    /// Metric samples among them.
    pub metrics: u64,
    /// Scheduling commands among them.
    pub cmds: u64,
    /// Distinct (src, dst) links that carried traffic.
    pub links: usize,
    /// Control-plane envelopes dropped by the fault plan (only the
    /// chaos-aware validator counts these).
    pub drops: u64,
    /// Deliveries the fault plan delayed beyond the modeled latency.
    pub delayed: u64,
}

/// Replays a cluster's delivery journal against the modeled topology and
/// checks the fabric invariants that make sharding sound:
///
/// - every delivery arrived exactly one modeled link latency after it was
///   sent (`recv == send + latency(src, dst)`);
/// - no delivery was injected before its receive time (conservative
///   lookahead: nothing ever schedules in a shard's past), and each was
///   handed to the destination kernel at exactly its receive time;
/// - per link, sequence numbers are the contiguous range `0..n` and both
///   send and receive times are non-decreasing in sequence order (FIFO
///   links, no loss, no duplication).
///
/// The journal's record order is layout-dependent (shards drain barriers
/// concurrently), so records are re-sorted internally; the verdict is
/// layout-invariant like every other cluster artifact.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_cluster(
    journal: &[DeliveryRecord],
    topo: &NetTopology,
) -> Result<ClusterStats, String> {
    let mut stats = ClusterStats::default();
    let mut links: BTreeMap<(usize, usize), Vec<&DeliveryRecord>> = BTreeMap::new();
    for rec in journal {
        if rec.src >= topo.nodes() || rec.dst >= topo.nodes() {
            return Err(format!(
                "delivery {}→{} seq {} names a rack node outside the {}-node topology",
                rec.src,
                rec.dst,
                rec.seq,
                topo.nodes()
            ));
        }
        let expect = rec.send_time + topo.latency(rec.src, rec.dst);
        if rec.recv_time != expect {
            return Err(format!(
                "delivery {}→{} seq {}: recv {:?} != send {:?} + link latency {:?}",
                rec.src,
                rec.dst,
                rec.seq,
                rec.recv_time,
                rec.send_time,
                topo.latency(rec.src, rec.dst)
            ));
        }
        if rec.injected_at > rec.recv_time {
            return Err(format!(
                "delivery {}→{} seq {} injected at {:?}, after its receive time {:?} — \
                 the lookahead bound was violated",
                rec.src, rec.dst, rec.seq, rec.injected_at, rec.recv_time
            ));
        }
        if rec.delivered_at != rec.recv_time {
            return Err(format!(
                "delivery {}→{} seq {} handed to the kernel at {:?}, not at its receive \
                 time {:?}",
                rec.src, rec.dst, rec.seq, rec.delivered_at, rec.recv_time
            ));
        }
        stats.deliveries += 1;
        match rec.kind {
            MsgKind::Tuple => stats.tuples += 1,
            MsgKind::Metric => stats.metrics += 1,
            MsgKind::Cmd => stats.cmds += 1,
        }
        links.entry((rec.src, rec.dst)).or_default().push(rec);
    }
    stats.links = links.len();
    for ((src, dst), mut recs) in links {
        recs.sort_by_key(|r| r.seq);
        for (i, rec) in recs.iter().enumerate() {
            if rec.seq != i as u64 {
                return Err(format!(
                    "link {src}→{dst}: delivered seqs are not the contiguous range 0..{} \
                     (hole before seq {})",
                    recs.len(),
                    rec.seq
                ));
            }
        }
        for pair in recs.windows(2) {
            if pair[1].send_time < pair[0].send_time {
                return Err(format!(
                    "link {src}→{dst}: seq {} was sent at {:?}, before seq {} at {:?}",
                    pair[1].seq, pair[1].send_time, pair[0].seq, pair[0].send_time
                ));
            }
            if pair[1].recv_time < pair[0].recv_time {
                return Err(format!(
                    "link {src}→{dst}: seq {} arrived at {:?}, before seq {} at {:?} — \
                     the link reordered",
                    pair[1].seq, pair[1].recv_time, pair[0].seq, pair[0].recv_time
                ));
            }
        }
    }
    Ok(stats)
}

/// Chaos-aware variant of [`validate_cluster`]: replays a journal produced
/// under a [`NetFaultPlan`] together with the fabric's drop journal.
///
/// The relaxations, each checked *against the plan* rather than waived:
///
/// - a control-plane delivery may arrive late, but only by exactly the
///   extra the plan's (pure) verdict assigns to that envelope;
/// - per-link sequence numbers must be contiguous over **delivered ∪
///   dropped** envelopes, with every hole accounted for by a drop record
///   whose verdict really is `Drop` (and never a data tuple);
/// - per-link receive times may reorder (delays interleave), but send
///   times must still be non-decreasing in sequence order.
///
/// Everything else — exact latency for tuples, lookahead, deliver-at-recv
/// — is enforced unchanged.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_cluster_chaos(
    journal: &[DeliveryRecord],
    drops: &[DropRecord],
    topo: &NetTopology,
    plan: &NetFaultPlan,
) -> Result<ClusterStats, String> {
    let mut stats = ClusterStats::default();
    // Per-link seq → send_time over delivered and dropped envelopes.
    let mut links: BTreeMap<(usize, usize), BTreeMap<u64, simos::SimTime>> = BTreeMap::new();
    for rec in journal {
        if rec.src >= topo.nodes() || rec.dst >= topo.nodes() {
            return Err(format!(
                "delivery {}→{} seq {} names a rack node outside the {}-node topology",
                rec.src,
                rec.dst,
                rec.seq,
                topo.nodes()
            ));
        }
        let extra = if rec.kind == MsgKind::Tuple {
            SimDuration::ZERO
        } else {
            match plan.verdict(rec.src, rec.dst, rec.seq, rec.send_time) {
                NetVerdict::Deliver => SimDuration::ZERO,
                NetVerdict::Delay(d) => {
                    stats.delayed += 1;
                    d
                }
                NetVerdict::Drop => {
                    return Err(format!(
                        "delivery {}→{} seq {} was delivered, but the plan says Drop",
                        rec.src, rec.dst, rec.seq
                    ))
                }
            }
        };
        let expect = rec.send_time + topo.latency(rec.src, rec.dst) + extra;
        if rec.recv_time != expect {
            return Err(format!(
                "delivery {}→{} seq {}: recv {:?} != send {:?} + latency {:?} + plan extra {:?}",
                rec.src,
                rec.dst,
                rec.seq,
                rec.recv_time,
                rec.send_time,
                topo.latency(rec.src, rec.dst),
                extra
            ));
        }
        if rec.injected_at > rec.recv_time {
            return Err(format!(
                "delivery {}→{} seq {} injected at {:?}, after its receive time {:?} — \
                 the lookahead bound was violated",
                rec.src, rec.dst, rec.seq, rec.injected_at, rec.recv_time
            ));
        }
        if rec.delivered_at != rec.recv_time {
            return Err(format!(
                "delivery {}→{} seq {} handed to the kernel at {:?}, not at its receive \
                 time {:?}",
                rec.src, rec.dst, rec.seq, rec.delivered_at, rec.recv_time
            ));
        }
        stats.deliveries += 1;
        match rec.kind {
            MsgKind::Tuple => stats.tuples += 1,
            MsgKind::Metric => stats.metrics += 1,
            MsgKind::Cmd => stats.cmds += 1,
        }
        if links
            .entry((rec.src, rec.dst))
            .or_default()
            .insert(rec.seq, rec.send_time)
            .is_some()
        {
            return Err(format!(
                "link {}→{}: seq {} delivered twice",
                rec.src, rec.dst, rec.seq
            ));
        }
    }
    for d in drops {
        if d.kind == MsgKind::Tuple {
            return Err(format!(
                "drop {}→{} seq {}: the fabric must never drop data tuples",
                d.src, d.dst, d.seq
            ));
        }
        if plan.verdict(d.src, d.dst, d.seq, d.send_time) != NetVerdict::Drop {
            return Err(format!(
                "drop {}→{} seq {} recorded, but the plan's verdict is not Drop",
                d.src, d.dst, d.seq
            ));
        }
        stats.drops += 1;
        if links
            .entry((d.src, d.dst))
            .or_default()
            .insert(d.seq, d.send_time)
            .is_some()
        {
            return Err(format!(
                "link {}→{}: seq {} both delivered and dropped",
                d.src, d.dst, d.seq
            ));
        }
    }
    stats.links = links.len();
    for ((src, dst), seqs) in links {
        let mut prev_send = None;
        for (i, (&seq, &send)) in seqs.iter().enumerate() {
            if seq != i as u64 {
                return Err(format!(
                    "link {src}→{dst}: delivered ∪ dropped seqs are not the contiguous \
                     range 0..{} (hole before seq {seq})",
                    seqs.len()
                ));
            }
            if let Some(p) = prev_send {
                if send < p {
                    return Err(format!(
                        "link {src}→{dst}: seq {seq} was sent at {send:?}, before its \
                         predecessor at {p:?}"
                    ));
                }
            }
            prev_send = Some(send);
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{SimTime, ThreadId};

    fn t(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    fn tid(raw: u64) -> ThreadId {
        ThreadId::from_u64(raw)
    }

    fn synthetic_dump() -> TraceDump {
        let records = vec![
            TraceRecord {
                at: t(0),
                event: TraceEvent::Switch {
                    node: 0,
                    cpu: 0,
                    prev: None,
                    next: tid(1),
                    fresh: true,
                },
            },
            TraceRecord {
                at: t(100),
                event: TraceEvent::SpanBegin {
                    track: TraceTrack::Thread(tid(1)),
                    name: "batch",
                    args: vec![("queue_depth", 3.0)],
                },
            },
            TraceRecord {
                at: t(500),
                event: TraceEvent::SpanEnd {
                    track: TraceTrack::Thread(tid(1)),
                    name: "batch",
                    args: vec![],
                },
            },
            // Re-dispatch of the same thread: must merge, not split.
            TraceRecord {
                at: t(600),
                event: TraceEvent::Switch {
                    node: 0,
                    cpu: 0,
                    prev: Some(tid(1)),
                    next: tid(1),
                    fresh: false,
                },
            },
            TraceRecord {
                at: t(1_000),
                event: TraceEvent::Switch {
                    node: 0,
                    cpu: 0,
                    prev: Some(tid(1)),
                    next: tid(2),
                    fresh: true,
                },
            },
            TraceRecord {
                at: t(1_500),
                event: TraceEvent::Block {
                    node: 0,
                    cpu: 0,
                    tid: tid(2),
                    channel: None,
                },
            },
            TraceRecord {
                at: t(2_000),
                event: TraceEvent::Instant {
                    track: TraceTrack::Supervisor,
                    name: "engage",
                    args: vec![("binding", 0.0)],
                },
            },
            TraceRecord {
                at: t(2_500),
                event: TraceEvent::Counter {
                    track: TraceTrack::Node(0),
                    name: "cpu_util",
                    value: 0.75,
                },
            },
        ];
        TraceDump {
            label: "synthetic".into(),
            threads: vec![
                ThreadMeta {
                    tid: 1,
                    name: "op-a".into(),
                    node: 0,
                },
                ThreadMeta {
                    tid: 2,
                    name: "op-b".into(),
                    node: 0,
                },
            ],
            nodes: vec![NodeMeta {
                index: 0,
                name: "n0".into(),
                cpus: 1,
            }],
            records,
            dropped: 0,
        }
    }

    #[test]
    fn slices_merge_redispatches_and_close_on_block() {
        let dump = synthetic_dump();
        let slices = cpu_slices(&dump);
        assert_eq!(slices.len(), 2, "one merged slice per thread");
        assert_eq!((slices[0].tid, slices[0].start_ns, slices[0].end_ns), (1, 0, 1_000));
        assert_eq!((slices[1].tid, slices[1].start_ns, slices[1].end_ns), (2, 1_000, 1_500));
    }

    #[test]
    fn chrome_export_round_trips_and_validates() {
        let text = export_chrome(&[synthetic_dump()]).compact();
        let n = validate_chrome(&text).expect("valid trace");
        assert!(n > 0, "events present");
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(Json::as_str))
            .collect();
        for ph in ["M", "X", "B", "E", "i", "C"] {
            assert!(phases.contains(&ph), "missing phase {ph}: {phases:?}");
        }
    }

    #[test]
    fn summary_is_finite_and_names_supervisor_events() {
        let summary = summarize(&[synthetic_dump()]);
        validate_summary(&summary).expect("finite summary");
        assert!(summary.contains("engage"), "supervisor timeline rendered");
        assert!(summary.contains("op-a"), "per-thread share rendered");
        assert!(summary.contains("context switches: 2"), "{summary}");
    }

    #[test]
    fn validate_chrome_rejects_missing_keys() {
        assert!(validate_chrome("{\"traceEvents\": [{\"ph\": \"X\"}]}").is_err());
        assert!(validate_chrome("{}").is_err());
        assert!(validate_summary("share 12.5% NaN").is_err());
        assert!(validate_summary("e2e=inf").is_err());
        assert!(
            validate_summary("degrade_tenant tenant=2 infra=1").is_ok(),
            "words merely containing nan/inf are fine"
        );
    }

    /// A well-formed hotplug sequence: the occupant is preempted at the
    /// same instant the CPU goes offline (record order: Preempt first),
    /// migrates cgroups, and dispatch resumes after the CPU comes back.
    fn hotplug_dump(preempt_before_offline: bool) -> TraceDump {
        use simos::CgroupId;
        let mut records = vec![TraceRecord {
            at: t(0),
            event: TraceEvent::Switch {
                node: 0,
                cpu: 1,
                prev: None,
                next: tid(1),
                fresh: true,
            },
        }];
        if preempt_before_offline {
            records.push(TraceRecord {
                at: t(1_000),
                event: TraceEvent::Preempt { node: 0, cpu: 1, tid: tid(1) },
            });
        }
        records.push(TraceRecord {
            at: t(1_000),
            event: TraceEvent::CpuOffline { node: 0, cpu: 1 },
        });
        records.push(TraceRecord {
            at: t(1_100),
            event: TraceEvent::Migration { tid: tid(1), cgroup: CgroupId::from_u64(0) },
        });
        records.push(TraceRecord {
            at: t(2_000),
            event: TraceEvent::CpuOnline { node: 0, cpu: 1 },
        });
        records.push(TraceRecord {
            at: t(2_500),
            event: TraceEvent::Switch {
                node: 0,
                cpu: 1,
                prev: Some(tid(1)),
                next: tid(1),
                fresh: true,
            },
        });
        TraceDump {
            label: "hotplug".into(),
            threads: vec![ThreadMeta { tid: 1, name: "op-a".into(), node: 0 }],
            nodes: vec![NodeMeta { index: 0, name: "n0".into(), cpus: 2 }],
            records,
            dropped: 0,
        }
    }

    #[test]
    fn hotplug_validation_accepts_clean_sequence() {
        let stats = validate_hotplug(&hotplug_dump(true)).expect("clean hotplug");
        assert_eq!(
            stats,
            HotplugStats { offlines: 1, onlines: 1, migrations: 1 }
        );
        // The exported Chrome document carries the offline/online instants.
        let text = export_chrome(&[hotplug_dump(true)]).compact();
        validate_chrome(&text).expect("valid trace");
        assert!(text.contains("cpu_offline") && text.contains("cpu_online"));
    }

    #[test]
    fn hotplug_validation_catches_stranded_thread() {
        let err = validate_hotplug(&hotplug_dump(false)).unwrap_err();
        assert!(err.contains("left on cpu"), "{err}");
    }

    #[test]
    fn hotplug_validation_catches_dispatch_to_dead_cpu() {
        let mut dump = hotplug_dump(true);
        // Remove the CpuOnline so the final Switch targets a dead CPU.
        dump.records.retain(|r| !matches!(r.event, TraceEvent::CpuOnline { .. }));
        let err = validate_hotplug(&dump).unwrap_err();
        assert!(err.contains("offline cpu"), "{err}");
    }

    /// Thread 1 waits 400 ns from wake to dispatch, loses its slice at
    /// t=1000 and waits another 600 ns for its re-dispatch.
    fn starvation_dump(records: Vec<TraceRecord>) -> TraceDump {
        TraceDump {
            label: "starve".into(),
            threads: vec![ThreadMeta { tid: 1, name: "op-a".into(), node: 0 }],
            nodes: vec![NodeMeta { index: 0, name: "n0".into(), cpus: 1 }],
            records,
            dropped: 0,
        }
    }

    #[test]
    fn starvation_replay_measures_dispatch_waits() {
        let records = vec![
            TraceRecord { at: t(0), event: TraceEvent::Wake { tid: tid(1) } },
            TraceRecord {
                at: t(400),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: None, next: tid(1), fresh: true },
            },
            TraceRecord {
                at: t(1_000),
                event: TraceEvent::SliceExpire { node: 0, cpu: 0, tid: tid(1) },
            },
            TraceRecord {
                at: t(1_000),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: Some(tid(1)), next: tid(2), fresh: true },
            },
            TraceRecord {
                at: t(1_600),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: Some(tid(2)), next: tid(1), fresh: true },
            },
        ];
        let stats = validate_no_starvation(&starvation_dump(records.clone()), SimDuration::from_nanos(1_000))
            .expect("waits under limit");
        assert_eq!(stats.waits, 2);
        assert!((stats.max_wait_s - 600e-9).abs() < 1e-15, "{}", stats.max_wait_s);
        // A tighter limit catches the 600 ns re-dispatch wait.
        let err = validate_no_starvation(&starvation_dump(records), SimDuration::from_nanos(500))
            .unwrap_err();
        assert!(err.contains("waited"), "{err}");
    }

    #[test]
    fn starvation_replay_catches_wait_open_at_end_of_trace() {
        let records = vec![
            TraceRecord { at: t(0), event: TraceEvent::Wake { tid: tid(1) } },
            TraceRecord {
                at: t(10_000),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: None, next: tid(2), fresh: true },
            },
        ];
        let err = validate_no_starvation(&starvation_dump(records), SimDuration::from_nanos(5_000))
            .unwrap_err();
        assert!(err.contains("waited"), "{err}");
    }

    #[test]
    fn starvation_replay_ignores_blocked_threads() {
        // Wake then Block: the thread stopped being runnable, so the long
        // quiet stretch afterwards is not a starvation wait.
        let records = vec![
            TraceRecord { at: t(0), event: TraceEvent::Wake { tid: tid(1) } },
            TraceRecord {
                at: t(100),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: None, next: tid(1), fresh: true },
            },
            TraceRecord {
                at: t(200),
                event: TraceEvent::Block { node: 0, cpu: 0, tid: tid(1), channel: None },
            },
            TraceRecord {
                at: t(1_000_000),
                event: TraceEvent::Switch { node: 0, cpu: 0, prev: None, next: tid(2), fresh: true },
            },
        ];
        let stats = validate_no_starvation(&starvation_dump(records), SimDuration::from_nanos(500))
            .expect("blocked thread is not starved");
        assert_eq!(stats.waits, 1);
    }

    #[test]
    fn starvation_replay_rejects_truncated_rings() {
        let mut dump = starvation_dump(Vec::new());
        dump.dropped = 7;
        let err = validate_no_starvation(&dump, SimDuration::from_secs(1)).unwrap_err();
        assert!(err.contains("dropped"), "{err}");
    }
}
