//! Control-plane partition end-to-end test (ISSUE acceptance criterion):
//! when the controller is partitioned away from a worker, the worker's
//! lease expires and every one of its operator threads reverts to CFS
//! defaults (`nice` 0) within the lease-detection bound; after the
//! partition heals, the cluster reconverges to the **exact** schedule of
//! an unpartitioned run, layout-invariantly.
//!
//! The policy here is static (metric-independent), so the unpartitioned
//! final schedule is a fixed point the healed run must land on exactly —
//! any lingering partition effect would show up as a nice mismatch.

use std::cell::RefCell;
use std::rc::Rc;

use bench::cluster::{install_metric_relay, Cluster, ClusterShard};
use lachesis::{
    install_lease_guard, LachesisBuilder, MirrorDriver, MirrorQuery, Policy, PolicyView,
    RemoteNiceTranslator, Scope, SinglePrioritySchedule,
};
use lachesis_metrics::{MetricName, TimeSeriesStore};
use simos::{machines, Kernel, NetFaultPlan, NetTopology, RackNodeId, SimDuration, SimTime};
use spe::{
    deploy, Consume, CostModel, EngineConfig, LogicalGraph, Partitioning, PassThrough, Placement,
    Role, SpeKind, Tuple,
};

const NODES: usize = 3; // controller + 2 workers
const LATENCY: SimDuration = SimDuration::from_millis(1);
const LEASE: SimDuration = SimDuration::from_secs(2);
const RELAY: SimDuration = SimDuration::from_millis(500);
const PERIOD: SimDuration = SimDuration::from_millis(500);
/// Partition window: controller <-> worker 1 only; worker 2 stays attached.
const PART_FROM: SimDuration = SimDuration::from_secs(3);
const PART_UNTIL: SimDuration = SimDuration::from_secs(8);
const TOTAL: SimDuration = SimDuration::from_secs(14);

/// A metric-independent policy: priority = operator depth. Its fixed
/// point does not move with tuple counts, so partitioned and
/// unpartitioned runs must end on identical nice assignments.
struct DepthPolicy;

impl Policy for DepthPolicy {
    fn name(&self) -> &str {
        "static-depth"
    }
    fn period(&self) -> SimDuration {
        PERIOD
    }
    fn required_metrics(&self) -> Vec<MetricName> {
        Vec::new()
    }
    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        view.scope
            .iter()
            .map(|&op| (op, (op.op + 1) as f64 + 0.1 * op.query as f64))
            .collect()
    }
}

fn pipeline(name: &str, rate: f64) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let src = b.op("src", Role::Ingress, CostModel::micros(20), 1, || {
        Box::new(PassThrough)
    });
    let hot = b.op("hot", Role::Transform, CostModel::micros(300), 1, || {
        Box::new(PassThrough)
    });
    let sink = b.op("sink", Role::Egress, CostModel::micros(20), 1, || {
        Box::new(Consume)
    });
    b.edge(src, hot, Partitioning::Forward);
    b.edge(hot, sink, Partitioning::Forward);
    b.source("gen", src, rate, |seq, now| Tuple::new(now, seq, vec![]));
    b.build().unwrap()
}

fn node_graphs(rack_id: RackNodeId) -> Vec<LogicalGraph> {
    (0..2)
        .map(|j| pipeline(&format!("n{rack_id}q{j}"), 600.0 + 100.0 * j as f64))
        .collect()
}

fn build_shard(racks: Vec<RackNodeId>) -> ClusterShard {
    let topo = NetTopology::uniform(NODES, LATENCY);
    let mut shard = ClusterShard::new(Kernel::new(machines::server_config()), topo);
    for rack_id in racks {
        let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
        if rack_id == 0 {
            let node = shard.kernel.add_node("rack0", 4);
            shard.add_rack_node(0, node, Rc::clone(&store));
            let cmd_outbox = Rc::new(RefCell::new(Vec::new()));
            let mut builder = LachesisBuilder::new();
            for dst in 1..NODES {
                let mirrors: Vec<MirrorQuery> = node_graphs(dst)
                    .iter()
                    .map(|g| MirrorQuery::new(g, false))
                    .collect();
                builder = builder
                    .driver(
                        MirrorDriver::new(
                            &format!("liebre@n{dst}"),
                            SpeKind::Liebre,
                            mirrors,
                            Rc::clone(&store),
                        )
                        .with_fence(LEASE),
                    )
                    .policy(
                        dst - 1,
                        Scope::AllQueries,
                        DepthPolicy,
                        RemoteNiceTranslator::new(dst, Rc::clone(&cmd_outbox)),
                    );
            }
            builder.build().start(&mut shard.kernel);
            shard.set_cmd_outbox(0, cmd_outbox);
        } else {
            let node = shard.kernel.add_node(&format!("rack{rack_id}"), 2);
            shard.add_rack_node(rack_id, node, Rc::clone(&store));
            let queries = node_graphs(rack_id)
                .into_iter()
                .map(|g| {
                    deploy(
                        &mut shard.kernel,
                        g,
                        EngineConfig::liebre(),
                        &Placement::single(node),
                        Some(Rc::clone(&store)),
                    )
                    .expect("deploy worker pipeline")
                })
                .collect();
            shard.set_queries(rack_id, queries);
            shard
                .node(rack_id)
                .applier()
                .borrow_mut()
                .arm_lease(rack_id, LEASE);
            let applier = Rc::clone(shard.node(rack_id).applier());
            install_lease_guard(&mut shard.kernel, applier);
            let outbox = shard.outbox();
            install_metric_relay(&mut shard.kernel, outbox, rack_id, 0, store, RELAY);
        }
    }
    shard
}

fn build_cluster(shards: usize, threads: usize, plan: Option<NetFaultPlan>) -> Cluster {
    let mut assignment: Vec<Vec<RackNodeId>> = vec![Vec::new(); shards];
    for rack_id in 0..NODES {
        assignment[rack_id % shards].push(rack_id);
    }
    let builders = assignment
        .into_iter()
        .map(|racks| {
            Box::new(move || build_shard(racks)) as Box<dyn FnOnce() -> ClusterShard + Send>
        })
        .collect();
    let mut cluster = Cluster::new(NetTopology::uniform(NODES, LATENCY), threads, builders);
    if let Some(plan) = plan {
        cluster.set_net_faults(&plan);
    }
    cluster
}

fn partition_plan() -> NetFaultPlan {
    NetFaultPlan::new(11).partition(
        SimTime::ZERO + PART_FROM,
        SimTime::ZERO + PART_UNTIL,
        vec![0],
        vec![1],
    )
}

/// Per-worker operator nices, ascending rack id, deterministic op order.
fn worker_nices(cluster: &mut Cluster) -> Vec<(RackNodeId, Vec<i32>)> {
    let mut rows: Vec<(RackNodeId, Vec<i32>)> = cluster
        .map_shards(|_| {
            Box::new(|s: &mut ClusterShard| {
                s.rack_nodes()
                    .iter()
                    .filter(|nr| nr.rack_id() != 0)
                    .map(|nr| {
                        let nices = nr
                            .queries()
                            .iter()
                            .flat_map(|q| {
                                (0..q.op_count()).map(|i| {
                                    let tid = q.cell(i).thread().expect("operator bound");
                                    s.kernel.thread_info(tid).expect("live thread").nice.value()
                                })
                            })
                            .collect();
                        (nr.rack_id(), nices)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by_key(|r| r.0);
    rows
}

/// `(engagements, expirations)` per worker, ascending rack id.
fn lease_transitions(cluster: &mut Cluster) -> Vec<(RackNodeId, (u64, u64))> {
    let mut rows: Vec<(RackNodeId, (u64, u64))> = cluster
        .map_shards(|_| {
            Box::new(|s: &mut ClusterShard| {
                s.rack_nodes()
                    .iter()
                    .filter(|nr| nr.rack_id() != 0)
                    .map(|nr| (nr.rack_id(), nr.applier().borrow().lease_transitions()))
                    .collect::<Vec<_>>()
            })
        })
        .into_iter()
        .flatten()
        .collect();
    rows.sort_by_key(|r| r.0);
    rows
}

#[test]
fn partitioned_worker_falls_back_to_cfs_and_reconverges_after_heal() {
    // Reference: no partition, full duration.
    let mut reference = build_cluster(NODES, 1, None);
    reference.run_for(TOTAL);
    let ref_nices = worker_nices(&mut reference);
    assert!(
        ref_nices.iter().all(|(_, n)| n.iter().any(|&v| v != 0)),
        "the static schedule assigns non-default nices: {ref_nices:?}"
    );

    // Partitioned run, stopped at the checkpoints.
    let mut cluster = build_cluster(NODES, 1, Some(partition_plan()));

    // Just before the partition both workers hold the static schedule.
    cluster.run_for(PART_FROM);
    let pre = worker_nices(&mut cluster);
    assert_eq!(pre, ref_nices, "pre-partition schedule matches reference");

    // Two lease intervals into the partition (expiry at one interval, the
    // guard probes every half interval): worker 1 is fully back at CFS
    // defaults, worker 2 (never partitioned) still holds its schedule.
    cluster.run_for(LEASE + LEASE);
    let mid = worker_nices(&mut cluster);
    assert!(
        mid[0].1.iter().all(|&v| v == 0),
        "partitioned worker reverted every thread to nice 0: {mid:?}"
    );
    assert_eq!(
        mid[1],
        ref_nices[1],
        "unpartitioned worker keeps its schedule through the partition"
    );

    // After heal: the exact unpartitioned schedule, cluster-wide.
    cluster.run_for(TOTAL - PART_FROM - LEASE - LEASE);
    let healed = worker_nices(&mut cluster);
    assert_eq!(
        healed, ref_nices,
        "healed cluster reconverged to the unpartitioned schedule"
    );

    // The lease protocol saw the round trip: worker 1 engaged, expired,
    // re-engaged; worker 2 engaged once and never expired.
    let leases = lease_transitions(&mut cluster);
    assert_eq!(leases[0].1, (2, 1), "worker 1 lease: engage, expire, re-engage");
    assert_eq!(leases[1].1, (1, 0), "worker 2 lease: engaged once, never expired");
}

#[test]
fn partition_outcome_is_identical_for_any_layout() {
    let mut finals = Vec::new();
    for (shards, threads) in [(1, 1), (NODES, 1), (NODES, 2)] {
        let mut cluster = build_cluster(shards, threads, Some(partition_plan()));
        cluster.run_for(TOTAL);
        finals.push((
            worker_nices(&mut cluster),
            lease_transitions(&mut cluster),
            cluster.snapshot().digest(),
        ));
    }
    assert_eq!(finals[0], finals[1], "one shard == one shard per node");
    assert_eq!(finals[1], finals[2], "threading the shards changes nothing");
}
