//! The hard correctness constraint of the parallel trial runner: for any
//! `--jobs` value, every emitted artifact is byte-identical to the
//! sequential run. Trials are seeded, independent, and folded back in
//! input order, so thread scheduling must never leak into results.

use bench::experiments::{ablation, chaos, deadline, scale_out, table1};
use bench::ExpOptions;

fn opts(jobs: usize) -> ExpOptions {
    ExpOptions {
        jobs,
        reps: 2,
        ..ExpOptions::quick()
    }
}

/// Renders figures to their on-disk JSON form for comparison.
fn figures_json(figs: &[bench::report::Figure]) -> String {
    figs.iter()
        .map(|f| f.to_json().pretty())
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn fig1_is_byte_identical_across_jobs() {
    let seq = figures_json(&scale_out::fig1(&opts(1)));
    let par = figures_json(&scale_out::fig1(&opts(8)));
    assert_eq!(seq, par, "fig1 JSON differs between --jobs 1 and --jobs 8");
}

#[test]
fn ablation_is_byte_identical_across_jobs() {
    let seq = figures_json(&ablation::ablation(&opts(1)));
    let par = figures_json(&ablation::ablation(&opts(3)));
    assert_eq!(
        seq, par,
        "ablation JSON differs between --jobs 1 and --jobs 3"
    );
}

/// The deadline experiment fans (scheduler x seed) pairs through the
/// pool; its figure (including the SLO verdict notes CI greps for) must
/// not depend on how those pairs land on worker threads.
#[test]
fn fige1_is_byte_identical_across_jobs() {
    let seq = figures_json(&deadline::fige1(&opts(1)));
    let par = figures_json(&deadline::fige1(&opts(8)));
    assert_eq!(seq, par, "fige1 JSON differs between --jobs 1 and --jobs 8");
}

#[test]
fn table1_is_byte_identical_across_jobs() {
    let seq = table1::to_json(&table1::rows(&opts(1))).pretty();
    let par = table1::to_json(&table1::rows(&opts(8))).pretty();
    assert_eq!(seq, par, "table1 JSON differs between --jobs 1 and --jobs 8");
}

/// Renders traced chaos runs to both export formats (the exact bytes
/// `repro figc1 --trace` writes and prints).
fn trace_artifacts(jobs: usize) -> String {
    let dumps = chaos::trace_figc1(&opts(jobs), Some(200_000));
    format!(
        "{}\n{}",
        bench::trace::export_chrome(&dumps).compact(),
        bench::trace::summarize(&dumps)
    )
}

/// The `--trace` artifact obeys the same hard constraint as every other
/// emitted artifact: byte-identical between `--jobs 1` and `--jobs N`,
/// ring-buffer mode included.
#[test]
fn chaos_trace_is_byte_identical_across_jobs() {
    let seq = trace_artifacts(1);
    let par = trace_artifacts(2);
    assert_eq!(seq, par, "trace artifacts differ between --jobs 1 and --jobs 2");
}
