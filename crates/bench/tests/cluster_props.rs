//! Property-based tests of the sharded cluster fabric: for random rack
//! sizes, random per-link latencies and random source rates, the final
//! cluster state is **identical** no matter how rack nodes are packed
//! into shards or how many threads drive them — sharding is observable
//! only as wall-clock time. Also pins the fabric's network-modeling
//! invariants: every delivery arrives exactly one link latency after it
//! was sent, and a destination queue accepts exactly one modeled delay
//! (mixing two latencies into one queue is a bug, not a race).

use std::cell::RefCell;
use std::rc::Rc;

use bench::cluster::{Cluster, ClusterMsg, ClusterShard, DeliveryRecord, MsgKind, install_metric_relay};
use bench::trace::{validate_cluster, validate_cluster_chaos};
use lachesis_metrics::{FaultPlan, TimeSeriesStore};
use proptest::collection::vec;
use proptest::prelude::*;
use simos::{mix_seed, Kernel, NetFaultPlan, NetTopology, RackNodeId, SimDuration, SimTime};
use spe::{
    deploy, install_relay_source, CostModel, EngineConfig, LogicalGraph, Partitioning, Placement,
    Role, Tuple,
};

/// A two-op sink query fed only from the fabric.
fn remote_fed_graph(name: &str) -> LogicalGraph {
    let mut b = LogicalGraph::builder(name);
    let ing = b.op("in", Role::Ingress, CostModel::micros(25), 1, || {
        Box::new(spe::PassThrough)
    });
    let sink = b.op("out", Role::Egress, CostModel::micros(10), 1, || {
        Box::new(spe::Consume)
    });
    b.edge(ing, sink, Partitioning::Forward);
    b.build().expect("valid remote-fed graph")
}

/// Builds a rack on `topo`: node 0 hosts one relay source per worker node
/// (rates `rates[i-1]`), every worker node hosts one fabric-fed query and
/// relays its metrics back to node 0. `assignment[s]` lists the rack
/// nodes of shard `s`.
fn build(
    topo: &NetTopology,
    assignment: Vec<Vec<RackNodeId>>,
    threads: usize,
    rates: Vec<u64>,
) -> Cluster {
    let builders = assignment
        .into_iter()
        .map(|racks| {
            let topo = topo.clone();
            let rates = rates.clone();
            Box::new(move || {
                let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
                for rack_id in racks {
                    let node = shard.kernel.add_node(&format!("rack{rack_id}"), 2);
                    let store =
                        Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
                    shard.add_rack_node(rack_id, node, Rc::clone(&store));
                    if rack_id == 0 {
                        for (w, &rate) in rates.iter().enumerate() {
                            let dst = w + 1;
                            let outbox = shard.outbox();
                            install_relay_source(
                                &mut shard.kernel,
                                &format!("feed{dst}"),
                                rate as f64,
                                Box::new(|seq, now| Tuple::new(now, seq, vec![])),
                                Box::new(move |k, t| {
                                    outbox.send(
                                        0,
                                        dst,
                                        k.now(),
                                        ClusterMsg::Tuple { query: 0, op: 0, tuple: t },
                                    );
                                }),
                                SimDuration::from_millis(1),
                            );
                        }
                    } else {
                        let q = deploy(
                            &mut shard.kernel,
                            remote_fed_graph(&format!("sink{rack_id}")),
                            EngineConfig::liebre(),
                            &Placement::single(node),
                            Some(Rc::clone(&store)),
                        )
                        .expect("deploy remote-fed query");
                        shard.set_queries(rack_id, vec![q]);
                        let outbox = shard.outbox();
                        install_metric_relay(
                            &mut shard.kernel,
                            outbox,
                            rack_id,
                            0,
                            store,
                            SimDuration::from_millis(500),
                        );
                    }
                }
                shard
            }) as Box<dyn FnOnce() -> ClusterShard + Send>
        })
        .collect();
    Cluster::new(topo.clone(), threads, builders)
}

/// Rack nodes dealt round-robin over `shards` shards.
fn deal(nodes: usize, shards: usize) -> Vec<Vec<RackNodeId>> {
    let mut assignment = vec![Vec::new(); shards.min(nodes)];
    for rack_id in 0..nodes {
        let s = rack_id % assignment.len();
        assignment[s].push(rack_id);
    }
    assignment
}

/// A journal in a layout-independent order (per-epoch drain order depends
/// on how shards are packed).
fn canonical(journal: &[DeliveryRecord]) -> Vec<DeliveryRecord> {
    let mut j = journal.to_vec();
    j.sort_by_key(|r| (r.src, r.dst, r.seq));
    j
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random topology (2-4 rack nodes, every link its own latency),
    /// random rates: the snapshot, its digest, and the canonicalized
    /// delivery journal are identical across shard counts {1, 2, nodes}
    /// x shard threads {1, 4}, and the journal replays cleanly against
    /// the modeled network in every layout.
    #[test]
    fn any_layout_yields_the_same_cluster(
        nodes in 2usize..=4,
        all_lat_us in vec(300u64..2_500, 16),
        all_rates in vec(200u64..900, 3),
    ) {
        // The strategies are sized for the largest rack; smaller racks
        // use a prefix.
        let rates = all_rates[..nodes - 1].to_vec();
        let topo = NetTopology::from_matrix(
            nodes,
            all_lat_us[..nodes * nodes]
                .iter()
                .map(|&us| SimDuration::from_micros(us))
                .collect(),
        );
        let run = |shards: usize, threads: usize| {
            let mut cluster = build(&topo, deal(nodes, shards), threads, rates.clone());
            cluster.run_until(SimTime::ZERO + SimDuration::from_millis(500));
            let journal = canonical(cluster.journal());
            let stats = validate_cluster(cluster.journal(), cluster.topology())
                .expect("journal replays against the topology");
            assert!(stats.tuples > 0, "the fabric carried tuples");
            let snap = cluster.snapshot();
            let digest = snap.digest();
            (snap, digest, journal)
        };
        let (snap0, digest0, journal0) = run(1, 1);
        for (shards, threads) in [(2, 1), (2, 4), (nodes, 1), (nodes, 4)] {
            let (snap, digest, journal) = run(shards, threads);
            prop_assert_eq!(&snap, &snap0, "snapshot drifted at {} shards x {} threads", shards, threads);
            prop_assert_eq!(digest, digest0);
            prop_assert_eq!(&journal, &journal0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random topology x random seeded [`NetFaultPlan`] (drop window,
    /// latency spikes, a controller<->victim partition): the canonical
    /// journal, the sorted drop ledger and the snapshot digest are
    /// identical across shard counts {1, 2, nodes} x threads {1, 4}, and
    /// every layout's journal replays cleanly against the topology *and*
    /// the fault plan.
    #[test]
    fn any_layout_yields_the_same_chaotic_cluster(
        nodes in 3usize..=4,
        all_lat_us in vec(500u64..2_000, 16),
        all_rates in vec(200u64..900, 3),
        seed in 0u64..1_000,
        p_drop in 0.05f64..0.5,
        p_spike in 0.05f64..0.5,
        spike_us in 500u64..3_000,
        part_from_ms in 300u64..700,
        part_len_ms in 200u64..600,
        victim_raw in 0usize..8,
    ) {
        let rates = all_rates[..nodes - 1].to_vec();
        let topo = NetTopology::from_matrix(
            nodes,
            all_lat_us[..nodes * nodes]
                .iter()
                .map(|&us| SimDuration::from_micros(us))
                .collect(),
        );
        let victim = 1 + victim_raw % (nodes - 1);
        let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
        let plan = NetFaultPlan::new(seed)
            .drop_link(t(200), t(1_400), victim, 0, p_drop)
            .latency_spike(
                t(200),
                t(1_400),
                victim,
                0,
                p_spike,
                SimDuration::from_micros(spike_us),
            )
            .partition(
                t(part_from_ms),
                t(part_from_ms + part_len_ms),
                vec![0],
                vec![victim],
            );
        let run = |shards: usize, threads: usize| {
            let mut cluster = build(&topo, deal(nodes, shards), threads, rates.clone());
            cluster.set_net_faults(&plan);
            // Past 1s so the workers' metric relays ship at least one
            // completed bucket through the fault windows.
            cluster.run_until(t(1_500));
            let stats = validate_cluster_chaos(
                cluster.journal(),
                cluster.drops(),
                cluster.topology(),
                &plan,
            )
            .expect("chaotic journal replays against the topology and plan");
            assert!(stats.tuples > 0, "the fabric carried tuples");
            let journal = canonical(cluster.journal());
            let mut drops = cluster.drops().to_vec();
            drops.sort_by_key(|r| (r.src, r.dst, r.seq));
            (cluster.snapshot().digest(), journal, drops)
        };
        let (digest0, journal0, drops0) = run(1, 1);
        for (shards, threads) in [(2, 1), (2, 4), (nodes, 1), (nodes, 4)] {
            let (digest, journal, drops) = run(shards, threads);
            prop_assert_eq!(digest, digest0, "digest drifted at {} shards x {} threads", shards, threads);
            prop_assert_eq!(&journal, &journal0);
            prop_assert_eq!(&drops, &drops0);
        }
    }
}

/// How often the fault-drawing workers consult their plans.
const DRAW_PERIOD: SimDuration = SimDuration::from_millis(10);

/// Builds a rack whose workers each consult a [`FaultPlan`] every 10 ms
/// and ship one `Metric` envelope to node 0 per *surviving* draw, so the
/// plan's random stream is visible in the journal as per-link sequence
/// numbers. `seed_of(rack_id, within_shard_index)` picks each plan seed.
fn build_fault_drawers(
    topo: &NetTopology,
    assignment: Vec<Vec<RackNodeId>>,
    threads: usize,
    seed_of: fn(RackNodeId, usize) -> u64,
) -> Cluster {
    let builders = assignment
        .into_iter()
        .map(|racks| {
            let topo = topo.clone();
            Box::new(move || {
                let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
                for &rack_id in &racks {
                    let node = shard.kernel.add_node(&format!("rack{rack_id}"), 1);
                    let store =
                        Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
                    shard.add_rack_node(rack_id, node, store);
                }
                let workers = racks.iter().copied().filter(|&r| r != 0).enumerate();
                for (idx, rack_id) in workers {
                    let mut plan = FaultPlan::new(seed_of(rack_id, idx)).fetch_failure(
                        None,
                        SimTime::ZERO,
                        SimTime::ZERO + SimDuration::from_secs(10),
                        0.5,
                    );
                    let outbox = shard.outbox();
                    shard
                        .kernel
                        .schedule_periodic(DRAW_PERIOD, DRAW_PERIOD, move |k| {
                            let now = k.now();
                            if !plan.fetch_fails("draw", now) {
                                outbox.send(
                                    rack_id,
                                    0,
                                    now,
                                    ClusterMsg::Metric {
                                        path: format!("draw/w{rack_id}"),
                                        bucket: now,
                                        value: 1.0,
                                    },
                                );
                            }
                        });
                }
                shard
            }) as Box<dyn FnOnce() -> ClusterShard + Send>
        })
        .collect();
    Cluster::new(topo.clone(), threads, builders)
}

/// Per-worker [`FaultPlan`]s must be seeded from the *rack node id*
/// (`mix_seed(base, node_id)`), never from the worker's position within
/// its shard: node-id seeding replays the identical fault history under
/// every layout, while shard-local seeding demonstrably does not.
#[test]
fn fault_plan_seeds_derive_from_node_ids_not_shard_layout() {
    const NODES: usize = 5;
    let topo = NetTopology::uniform(NODES, SimDuration::from_millis(1));
    let run = |shards: usize, threads: usize, seed_of: fn(RackNodeId, usize) -> u64| {
        let mut cluster = build_fault_drawers(&topo, deal(NODES, shards), threads, seed_of);
        cluster.run_until(SimTime::ZERO + SimDuration::from_millis(400));
        let journal = canonical(cluster.journal());
        assert!(
            journal.iter().any(|r| r.kind == MsgKind::Metric),
            "surviving draws must reach node 0"
        );
        journal
    };
    fn by_node(rack_id: RackNodeId, _idx: usize) -> u64 {
        mix_seed(42, rack_id as u64)
    }
    fn by_shard_idx(_rack_id: RackNodeId, idx: usize) -> u64 {
        mix_seed(42, idx as u64)
    }
    let base = run(1, 1, by_node);
    for (shards, threads) in [(2, 1), (2, 4), (4, 1), (4, 4)] {
        assert_eq!(
            run(shards, threads, by_node),
            base,
            "node-id seeding diverged at {shards} shards x {threads} threads"
        );
    }
    // The buggy discipline: a worker's within-shard index changes with
    // the layout, so its fault history (and thus the journal) shifts.
    assert_ne!(
        run(1, 1, by_shard_idx),
        run(2, 1, by_shard_idx),
        "shard-local seeding must be layout-sensitive (the bug node-id seeding avoids)"
    );
}

/// Two sources whose links have different modeled latencies must not feed
/// the same destination queue: the queue's one-delay invariant fires
/// instead of silently interleaving two delay models.
#[test]
#[should_panic(expected = "mixed net delays")]
fn mixed_link_latencies_into_one_queue_are_rejected() {
    // latency(0->2) = 1 ms, latency(1->2) = 2 ms, everything else 1 ms.
    let mut lat = vec![SimDuration::from_millis(1); 9];
    lat[3 + 2] = SimDuration::from_millis(2); // link 1 -> 2
    let topo = NetTopology::from_matrix(3, lat);
    let builders = vec![Box::new({
        let topo = topo.clone();
        move || {
            let mut shard = ClusterShard::new(Kernel::default(), topo.clone());
            for rack_id in 0..3 {
                let node = shard.kernel.add_node(&format!("rack{rack_id}"), 2);
                let store =
                    Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
                shard.add_rack_node(rack_id, node, store);
                if rack_id == 2 {
                    let q = deploy(
                        &mut shard.kernel,
                        remote_fed_graph("sink"),
                        EngineConfig::liebre(),
                        &Placement::single(node),
                        None,
                    )
                    .expect("deploy");
                    shard.set_queries(2, vec![q]);
                } else {
                    let outbox = shard.outbox();
                    install_relay_source(
                        &mut shard.kernel,
                        &format!("feed_from_{rack_id}"),
                        500.0,
                        Box::new(|seq, now| Tuple::new(now, seq, vec![])),
                        Box::new(move |k, t| {
                            outbox.send(
                                rack_id,
                                2,
                                k.now(),
                                ClusterMsg::Tuple { query: 0, op: 0, tuple: t },
                            );
                        }),
                        SimDuration::from_millis(1),
                    );
                }
            }
            shard
        }
    }) as Box<dyn FnOnce() -> ClusterShard + Send>];
    let mut cluster = Cluster::new(topo, 1, builders);
    cluster.run_for(SimDuration::from_millis(50));
}

/// `validate_cluster` rejects journals that break the network model.
#[test]
fn corrupt_journals_are_rejected() {
    let topo = NetTopology::uniform(2, SimDuration::from_millis(1));
    let t = |ms: u64| SimTime::ZERO + SimDuration::from_millis(ms);
    let good = DeliveryRecord {
        src: 0,
        dst: 1,
        seq: 0,
        send_time: t(5),
        recv_time: t(6),
        injected_at: t(6),
        delivered_at: t(6),
        kind: MsgKind::Tuple,
    };
    let stats = validate_cluster(&[good], &topo).expect("a clean journal passes");
    assert_eq!(stats.deliveries, 1);
    assert_eq!(stats.tuples, 1);

    let wrong_latency = DeliveryRecord { recv_time: t(7), delivered_at: t(7), ..good };
    let err = validate_cluster(&[wrong_latency], &topo).unwrap_err();
    assert!(err.contains("link latency"), "{err}");

    let late_injection = DeliveryRecord { injected_at: t(8), ..good };
    let err = validate_cluster(&[late_injection], &topo).unwrap_err();
    assert!(err.contains("lookahead"), "{err}");

    let seq_hole = DeliveryRecord { seq: 1, ..good };
    let err = validate_cluster(&[seq_hole], &topo).unwrap_err();
    assert!(err.contains("contiguous"), "{err}");
}
