//! End-to-end tests of the observability layer: traced runs must export
//! valid Chrome `trace_event` JSON, and scheduling properties must be
//! checkable *from the trace alone* — without peeking at kernel state.

use bench::json::Json;
use bench::trace;
use bench::ExpOptions;
use simos::{Action, Kernel, Nice, SimCtx, SimDuration, ThreadBody};

/// A thread that computes forever in 100 µs chunks (a CPU hog).
#[derive(Debug)]
struct Spin;

impl ThreadBody for Spin {
    fn next_action(&mut self, _ctx: &mut SimCtx) -> Action {
        Action::Compute(SimDuration::from_micros(100))
    }
}

/// Sums the `X` slice durations per thread from parsed Chrome-trace JSON:
/// the per-thread CPU time as a Perfetto user would see it.
fn cpu_time_by_thread(doc: &Json) -> Vec<(u64, f64)> {
    let mut acc: std::collections::BTreeMap<u64, f64> = std::collections::BTreeMap::new();
    for ev in doc.get("traceEvents").unwrap().as_arr().unwrap() {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let dur = ev.get("dur").and_then(Json::as_f64).unwrap_or(0.0);
        let tid = ev
            .get("args")
            .and_then(|a| a.get("thread"))
            .and_then(Json::as_f64)
            .unwrap_or(-1.0) as u64;
        *acc.entry(tid).or_insert(0.0) += dur;
    }
    acc.into_iter().collect()
}

/// E2E: two CPU hogs share one CPU; the nice -5 thread must dominate.
/// The assertion is made purely from the exported trace's `X` slices.
#[test]
fn nice_priority_dominates_cpu_share_in_the_trace() {
    let mut kernel = Kernel::default();
    let node = kernel.add_node("n", 1);
    let favored = kernel.spawn(node, "favored", Spin).build();
    let starved = kernel.spawn(node, "starved", Spin).build();
    kernel.set_nice(favored, Nice::new(-5).unwrap()).unwrap();
    kernel.set_nice(starved, Nice::new(5).unwrap()).unwrap();

    let handle = kernel.install_tracing(None);
    kernel.run_for(SimDuration::from_secs(2));

    let dump = trace::capture(&kernel, &handle, "nice-hogs");
    let text = trace::export_chrome(std::slice::from_ref(&dump)).compact();
    trace::validate_chrome(&text).expect("valid Chrome trace");
    let doc = Json::parse(&text).unwrap();

    let shares = cpu_time_by_thread(&doc);
    let time_of = |tid: u64| {
        shares
            .iter()
            .find(|(t, _)| *t == tid)
            .map(|(_, d)| *d)
            .unwrap_or(0.0)
    };
    let fav = time_of(favored.as_u64());
    let starv = time_of(starved.as_u64());
    assert!(fav > 0.0 && starv > 0.0, "both threads ran: {shares:?}");
    // nice -5 vs +5 is a ~28x CFS weight ratio; 2x is a loose floor that
    // proves the ordering without being brittle.
    assert!(
        fav >= 2.0 * starv,
        "favored thread should dominate: {fav} vs {starv} us"
    );

    let summary = trace::summarize(std::slice::from_ref(&dump));
    trace::validate_summary(&summary).expect("finite summary");
    assert!(summary.contains("favored"), "{summary}");
}

/// E2E: a traced chaos run (fault injection + supervisor) exports a valid
/// trace containing all three layers — kernel switch slices, middleware
/// round spans, and the supervisor health timeline — and a finite summary
/// that shows the fallback/recovery sequence.
#[test]
fn traced_chaos_run_exports_all_three_layers() {
    let opts = ExpOptions {
        jobs: 1,
        ..ExpOptions::quick()
    };
    let dumps = bench::experiments::chaos::trace_figc1(&opts, None);
    assert_eq!(dumps.len(), 1, "quick mode runs one traced rep");
    assert!(dumps[0].dropped == 0, "unbounded buffer drops nothing");

    let text = trace::export_chrome(&dumps).compact();
    let n = trace::validate_chrome(&text).expect("valid Chrome trace");
    assert!(n > 100, "a real run produces plenty of events, got {n}");

    let doc = Json::parse(&text).unwrap();
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let names_with_ph = |ph: &str| -> Vec<&str> {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect()
    };
    // Kernel layer: CPU occupancy slices.
    assert!(!names_with_ph("X").is_empty(), "kernel switch slices present");
    // SPE + middleware layers: batch spans and round spans.
    let begins = names_with_ph("B");
    assert!(begins.contains(&"batch"), "operator batch spans present");
    assert!(begins.contains(&"round"), "middleware round spans present");
    // Supervisor layer: the quick-mode outage is long enough to degrade
    // and recover (the full fallback cycle is covered by the dedicated
    // long-outage test below).
    let instants = names_with_ph("i");
    for transition in ["engage", "degrade", "recover"] {
        assert!(
            instants.contains(&transition),
            "supervisor '{transition}' missing from trace instants"
        );
    }
    // Counter samplers: per-node utilization fed by Counter::rate_since.
    assert!(
        names_with_ph("C").iter().any(|n| n.contains("cpu_util")),
        "utilization counters present"
    );

    let summary = trace::summarize(&dumps);
    trace::validate_summary(&summary).expect("finite summary");
    for transition in ["degrade", "recover"] {
        assert!(summary.contains(transition), "summary timeline has {transition}");
    }
}

/// E2E: a metric outage long enough to cross the fallback threshold must
/// leave the complete supervisor health cycle in the trace, in causal
/// order: engage → degrade → fallback → retry → recover.
#[test]
fn supervisor_fallback_cycle_is_ordered_in_the_trace() {
    use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
    use lachesis_metrics::{FaultPlan, TimeSeriesStore};
    use simos::{machines, SimTime};
    use spe::{deploy, EngineConfig, Placement};
    use std::cell::RefCell;
    use std::rc::Rc;

    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let handle = kernel.install_tracing(None);
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let query = deploy(
        &mut kernel,
        queries::etl(500.0, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .unwrap();

    let at = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
    let plan = Rc::new(RefCell::new(
        FaultPlan::new(7).fetch_failure(Some("storm"), at(4), at(14), 1.0),
    ));
    LachesisBuilder::new()
        .driver(StoreDriver::storm(vec![query], Rc::clone(&store)).with_faults(plan))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build()
        .start(&mut kernel);
    kernel.run_for(SimDuration::from_secs(16));

    let dump = trace::capture(&kernel, &handle, "long-outage");
    let sequence: Vec<&str> = dump
        .records
        .iter()
        .filter_map(|r| match &r.event {
            simos::TraceEvent::Instant {
                track: simos::TraceTrack::Supervisor,
                name,
                ..
            } => Some(*name),
            _ => None,
        })
        .collect();
    let first = |name: &str| {
        sequence
            .iter()
            .position(|&n| n == name)
            .unwrap_or_else(|| panic!("'{name}' missing from supervisor timeline: {sequence:?}"))
    };
    let (engage, degrade) = (first("engage"), first("degrade"));
    let (fallback, retry, recover) = (first("fallback"), first("retry"), first("recover"));
    assert!(engage < degrade, "{sequence:?}");
    assert!(degrade < fallback, "{sequence:?}");
    assert!(fallback < retry, "{sequence:?}");
    assert!(retry < recover, "{sequence:?}");
}
