//! A Graphite-like time-series store.
//!
//! The paper's Lachesis deployment retrieves all SPE metrics from Graphite,
//! which caps the metric resolution at one second and therefore bounds the
//! middleware's scheduling period (§6.1). [`TimeSeriesStore`] reproduces
//! that interface: writers report samples, timestamps are floored to the
//! store resolution, and readers see the latest *completed* sample — i.e.
//! data that is up to one resolution interval stale, like real Graphite.

use std::collections::HashMap;

use simos::{SimDuration, SimTime};

/// A time-series database with fixed resolution, keyed by metric path.
///
/// # Examples
///
/// ```
/// use lachesis_metrics::TimeSeriesStore;
/// use simos::{SimDuration, SimTime};
///
/// let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
/// let t1 = SimTime::ZERO + SimDuration::from_millis(1500);
/// store.record("storm.op1.queue_size", t1, 42.0);
/// // The sample lands in the bucket starting at 1s.
/// assert_eq!(store.latest("storm.op1.queue_size"), Some((SimTime::ZERO + SimDuration::from_secs(1), 42.0)));
/// ```
#[derive(Debug)]
pub struct TimeSeriesStore {
    resolution: SimDuration,
    series: HashMap<String, Series>,
}

#[derive(Debug, Default)]
struct Series {
    /// (bucket start, last value written in the bucket)
    points: Vec<(SimTime, f64)>,
}

impl TimeSeriesStore {
    /// Creates a store with the given bucket resolution.
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is zero.
    pub fn new(resolution: SimDuration) -> Self {
        assert!(!resolution.is_zero(), "store resolution must be > 0");
        TimeSeriesStore {
            resolution,
            series: HashMap::new(),
        }
    }

    /// The bucket resolution.
    pub fn resolution(&self) -> SimDuration {
        self.resolution
    }

    fn bucket(&self, t: SimTime) -> SimTime {
        let r = self.resolution.as_nanos();
        SimTime::from_nanos(t.as_nanos() / r * r)
    }

    /// Records a sample; within one bucket, the last write wins.
    pub fn record(&mut self, key: &str, at: SimTime, value: f64) {
        let bucket = self.bucket(at);
        let series = self.series.entry(key.to_owned()).or_default();
        match series.points.last_mut() {
            Some((t, v)) if *t == bucket => *v = value,
            Some((t, _)) if *t > bucket => {
                // Out-of-order write: find and overwrite (rare).
                if let Some(p) = series.points.iter_mut().find(|(pt, _)| *pt == bucket) {
                    p.1 = value;
                }
            }
            _ => series.points.push((bucket, value)),
        }
    }

    /// The most recent sample for `key`, if any.
    pub fn latest(&self, key: &str) -> Option<(SimTime, f64)> {
        self.series.get(key)?.points.last().copied()
    }

    /// The most recent sample recorded at or before `t`.
    pub fn latest_at(&self, key: &str, t: SimTime) -> Option<(SimTime, f64)> {
        let points = &self.series.get(key)?.points;
        let idx = points.partition_point(|(pt, _)| *pt <= t);
        idx.checked_sub(1).map(|i| points[i])
    }

    /// All samples in `[from, to)` in time order.
    pub fn range(&self, key: &str, from: SimTime, to: SimTime) -> Vec<(SimTime, f64)> {
        match self.series.get(key) {
            None => Vec::new(),
            Some(s) => s
                .points
                .iter()
                .filter(|(t, _)| *t >= from && *t < to)
                .copied()
                .collect(),
        }
    }

    /// Mean of samples in `[from, to)`, if any exist.
    pub fn mean(&self, key: &str, from: SimTime, to: SimTime) -> Option<f64> {
        let pts = self.range(key, from, to);
        if pts.is_empty() {
            None
        } else {
            Some(pts.iter().map(|(_, v)| v).sum::<f64>() / pts.len() as f64)
        }
    }

    /// Number of distinct series stored.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// All metric paths, sorted (deterministic iteration order for
    /// exporters; the backing map is hash-ordered).
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.series.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }

    /// Every sample whose bucket starts strictly after `since`, sorted by
    /// `(path, bucket)`. This is the store side of a push-based exporter:
    /// a relay calls it once per export period with the previous period's
    /// cutoff and forwards the delta (e.g. to a rack-wide store across the
    /// modeled network).
    pub fn export_since(&self, since: SimTime) -> Vec<(String, SimTime, f64)> {
        let mut out = Vec::new();
        for key in self.keys() {
            let points = &self.series[key].points;
            let idx = points.partition_point(|(t, _)| *t <= since);
            for &(t, v) in &points[idx..] {
                out.push((key.to_owned(), t, v));
            }
        }
        out
    }

    /// Drops samples older than `keep` before `now` (Graphite retention).
    pub fn prune(&mut self, now: SimTime, keep: SimDuration) {
        let cutoff = SimTime::from_nanos(now.as_nanos().saturating_sub(keep.as_nanos()));
        for series in self.series.values_mut() {
            series.points.retain(|(t, _)| *t >= cutoff);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn records_floor_to_resolution() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        store.record("a", secs(1) + SimDuration::from_millis(999), 5.0);
        assert_eq!(store.latest("a"), Some((secs(1), 5.0)));
    }

    #[test]
    fn last_write_wins_within_bucket() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        store.record("a", secs(1), 1.0);
        store.record("a", secs(1) + SimDuration::from_millis(500), 2.0);
        assert_eq!(store.latest("a"), Some((secs(1), 2.0)));
    }

    #[test]
    fn latest_at_respects_cutoff() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        store.record("a", secs(1), 1.0);
        store.record("a", secs(2), 2.0);
        store.record("a", secs(3), 3.0);
        assert_eq!(store.latest_at("a", secs(2)), Some((secs(2), 2.0)));
        assert_eq!(
            store.latest_at("a", secs(2) + SimDuration::from_millis(500)),
            Some((secs(2), 2.0))
        );
        assert_eq!(store.latest_at("a", SimTime::ZERO), None);
    }

    #[test]
    fn range_and_mean() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        for s in 0..5 {
            store.record("a", secs(s), s as f64);
        }
        assert_eq!(store.range("a", secs(1), secs(4)).len(), 3);
        assert_eq!(store.mean("a", secs(1), secs(4)), Some(2.0));
        assert_eq!(store.mean("missing", secs(0), secs(10)), None);
    }

    #[test]
    fn prune_drops_old_samples() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        for s in 0..10 {
            store.record("a", secs(s), s as f64);
        }
        store.prune(secs(10), SimDuration::from_secs(3));
        assert_eq!(store.range("a", secs(0), secs(10)).len(), 3);
    }

    #[test]
    fn export_since_is_sorted_and_strict() {
        let mut store = TimeSeriesStore::new(SimDuration::from_secs(1));
        store.record("b", secs(1), 10.0);
        store.record("a", secs(1), 1.0);
        store.record("a", secs(2), 2.0);
        store.record("b", secs(3), 30.0);
        let all = store.export_since(SimTime::ZERO);
        assert_eq!(
            all,
            vec![
                ("a".to_owned(), secs(1), 1.0),
                ("a".to_owned(), secs(2), 2.0),
                ("b".to_owned(), secs(1), 10.0),
                ("b".to_owned(), secs(3), 30.0),
            ]
        );
        // Strictly-after cutoff: the secs(1) bucket itself is excluded.
        let delta = store.export_since(secs(1));
        assert_eq!(
            delta,
            vec![("a".to_owned(), secs(2), 2.0), ("b".to_owned(), secs(3), 30.0)]
        );
        assert_eq!(store.keys(), vec!["a", "b"]);
    }

    #[test]
    fn unknown_key_is_none() {
        let store = TimeSeriesStore::new(SimDuration::from_secs(1));
        assert_eq!(store.latest("nope"), None);
    }
}
