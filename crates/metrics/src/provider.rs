//! The metric provider: Algorithm 3 of the paper.
//!
//! At each scheduling period the provider computes every registered metric
//! for every SPE driver. A metric is either fetched directly (if the driver
//! provides it) or derived by recursively computing its dependency graph —
//! so the same policy works on SPEs exposing different raw metrics (Fig. 4).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

use simos::SimTime;

use crate::metric::{DepValues, EntityValues, MetricDef, MetricName};

/// Why a source could not serve a fetch (backend down, timeout, ...).
///
/// Fetch failures are *transient* by nature — the supervisor retries them —
/// unlike the configuration errors in [`MetricError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchError {
    /// Human-readable failure reason.
    pub reason: String,
}

impl FetchError {
    /// Creates a fetch error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        FetchError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for FetchError {}

/// Something metrics can be fetched from — implemented by SPE drivers.
pub trait MetricSource<K> {
    /// Identifies the source in error messages and metric paths.
    fn source_name(&self) -> &str;
    /// Whether this source can provide `metric` directly.
    fn provides(&self, metric: MetricName) -> bool;
    /// Fetches the current per-entity values of `metric`.
    ///
    /// Only called when [`provides`](MetricSource::provides) returned true.
    fn fetch(&self, metric: MetricName) -> EntityValues<K>;
    /// Fallible, time-aware fetch. The default delegates to
    /// [`fetch`](MetricSource::fetch) and never fails; drivers that talk to
    /// an unreliable backend (or inject faults) override this.
    fn try_fetch(&self, metric: MetricName, now: SimTime) -> Result<EntityValues<K>, FetchError> {
        let _ = now;
        Ok(self.fetch(metric))
    }
}

/// Errors from metric resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricError {
    /// A metric with no dependencies is not provided by the source
    /// (misconfiguration, Algorithm 3 L15).
    MissingPrimitive {
        /// The unavailable metric.
        metric: MetricName,
        /// The source that cannot provide it.
        source: String,
    },
    /// The dependency graph contains a cycle through this metric.
    DependencyCycle(MetricName),
    /// The metric has dependencies but no definition was installed.
    UndefinedDerived(MetricName),
    /// A source failed to serve a fetch (transient backend failure).
    FetchFailed {
        /// The metric being fetched.
        metric: MetricName,
        /// The failing source.
        source: String,
        /// The failure reason.
        reason: String,
    },
}

impl MetricError {
    /// Whether retrying later can plausibly succeed (transient failure),
    /// as opposed to a configuration error that will fail forever.
    pub fn is_transient(&self) -> bool {
        matches!(self, MetricError::FetchFailed { .. })
    }
}

impl fmt::Display for MetricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricError::MissingPrimitive { metric, source } => {
                write!(f, "metric {metric} unavailable from source {source} and has no dependencies")
            }
            MetricError::DependencyCycle(m) => write!(f, "metric {m} depends on itself"),
            MetricError::UndefinedDerived(m) => {
                write!(f, "metric {m} is not provided and has no definition")
            }
            MetricError::FetchFailed {
                metric,
                source,
                reason,
            } => {
                write!(f, "fetching {metric} from source {source} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for MetricError {}

/// Computes registered metrics from sources and derived-metric definitions.
///
/// # Examples
///
/// ```
/// use lachesis_metrics::{names, ratio_metric, MetricProvider, MetricSource, MetricName, EntityValues};
///
/// struct RawSource;
/// impl MetricSource<u32> for RawSource {
///     fn source_name(&self) -> &str { "spe-b" }
///     fn provides(&self, m: MetricName) -> bool {
///         m == names::TUPLES_IN || m == names::TUPLES_OUT
///     }
///     fn fetch(&self, m: MetricName) -> EntityValues<u32> {
///         let v = if m == names::TUPLES_IN { 10.0 } else { 25.0 };
///         [(7u32, v)].into_iter().collect()
///     }
/// }
///
/// let mut provider = MetricProvider::new();
/// provider.define(ratio_metric(names::SELECTIVITY, names::TUPLES_OUT, names::TUPLES_IN));
/// provider.register(names::SELECTIVITY);
/// provider.update(simos::SimTime::ZERO, &[&RawSource]).unwrap();
/// assert_eq!(provider.get(0, names::SELECTIVITY).unwrap()[&7], 2.5);
/// ```
pub struct MetricProvider<K> {
    defs: HashMap<MetricName, MetricDef<K>>,
    registered: BTreeSet<MetricName>,
    values: Vec<HashMap<MetricName, EntityValues<K>>>,
}

impl<K> fmt::Debug for MetricProvider<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricProvider")
            .field("defs", &self.defs.keys().collect::<Vec<_>>())
            .field("registered", &self.registered)
            .finish_non_exhaustive()
    }
}

impl<K: Clone + Eq + std::hash::Hash> Default for MetricProvider<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Clone + Eq + std::hash::Hash> MetricProvider<K> {
    /// Creates an empty provider.
    pub fn new() -> Self {
        MetricProvider {
            defs: HashMap::new(),
            registered: BTreeSet::new(),
            values: Vec::new(),
        }
    }

    /// Installs a derived-metric definition (replacing any previous one).
    pub fn define(&mut self, def: MetricDef<K>) {
        self.defs.insert(def.name(), def);
    }

    /// Registers a metric required by a policy (Algorithm 1, L1).
    pub fn register(&mut self, name: MetricName) {
        self.registered.insert(name);
    }

    /// The currently registered metrics.
    pub fn registered(&self) -> impl Iterator<Item = MetricName> + '_ {
        self.registered.iter().copied()
    }

    /// Computes all registered metrics for all sources (Algorithm 3).
    ///
    /// One failing source does not poison the others: each healthy
    /// source's values are committed, and a failing source *keeps its
    /// previous values* (hold-last) so policies degrade gracefully instead
    /// of losing the whole view.
    ///
    /// # Errors
    ///
    /// Returns the first per-source error (all of them are reported by
    /// [`update_reporting`](MetricProvider::update_reporting)): a required
    /// primitive metric unavailable from a source, a derived metric with no
    /// definition, a dependency cycle, or a failed fetch.
    pub fn update(
        &mut self,
        now: SimTime,
        sources: &[&dyn MetricSource<K>],
    ) -> Result<(), MetricError> {
        match self.update_reporting(now, sources).into_iter().next() {
            Some((_, e)) => Err(e),
            None => Ok(()),
        }
    }

    /// Like [`update`](MetricProvider::update), but reports *every* failing
    /// source as `(source_index, error)` pairs (empty = all healthy).
    pub fn update_reporting(
        &mut self,
        now: SimTime,
        sources: &[&dyn MetricSource<K>],
    ) -> Vec<(usize, MetricError)> {
        let mut errors = Vec::new();
        // Hold-last: pre-extend so a failing source keeps its old values.
        while self.values.len() < sources.len() {
            self.values.push(HashMap::new());
        }
        for (i, source) in sources.iter().enumerate() {
            // Per-driver cache, fresh each period (Algorithm 3, L4).
            let mut cache: HashMap<MetricName, EntityValues<K>> = HashMap::new();
            let mut visiting: HashSet<MetricName> = HashSet::new();
            let mut failed = None;
            for &metric in &self.registered {
                if let Err(e) = self.compute(metric, now, *source, &mut cache, &mut visiting) {
                    failed = Some(e);
                    break;
                }
            }
            match failed {
                Some(e) => errors.push((i, e)),
                None => self.values[i] = cache,
            }
        }
        errors
    }

    fn compute(
        &self,
        metric: MetricName,
        now: SimTime,
        source: &dyn MetricSource<K>,
        cache: &mut HashMap<MetricName, EntityValues<K>>,
        visiting: &mut HashSet<MetricName>,
    ) -> Result<(), MetricError> {
        if cache.contains_key(&metric) {
            return Ok(()); // L10-11
        }
        if source.provides(metric) {
            let values =
                source
                    .try_fetch(metric, now)
                    .map_err(|e| MetricError::FetchFailed {
                        metric,
                        source: source.source_name().to_owned(),
                        reason: e.reason,
                    })?;
            cache.insert(metric, values); // L12-13
            return Ok(());
        }
        let Some(def) = self.defs.get(&metric) else {
            return Err(MetricError::UndefinedDerived(metric));
        };
        if def.deps().is_empty() {
            // L14-15: a primitive (no-dependency) metric the source lacks.
            return Err(MetricError::MissingPrimitive {
                metric,
                source: source.source_name().to_owned(),
            });
        }
        if !visiting.insert(metric) {
            return Err(MetricError::DependencyCycle(metric));
        }
        for &dep in def.deps() {
            self.compute(dep, now, source, cache, visiting)?; // L16
        }
        visiting.remove(&metric);
        let dep_refs: Vec<&EntityValues<K>> = def
            .deps()
            .iter()
            .map(|d| cache.get(d).expect("dependency just computed"))
            .collect();
        let deps: &DepValues<'_, K> = dep_refs.as_slice();
        let value = def.combine(deps);
        cache.insert(metric, value); // L17-18
        Ok(())
    }

    /// The computed values of `metric` for source index `source_idx`, as of
    /// the last [`update`](MetricProvider::update).
    pub fn get(&self, source_idx: usize, metric: MetricName) -> Option<&EntityValues<K>> {
        self.values.get(source_idx)?.get(&metric)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::{names, ratio_metric};
    use simos::SimDuration;

    /// SPE "A" from Fig. 4: exposes selectivity and cost directly.
    struct SpeA;
    impl MetricSource<u32> for SpeA {
        fn source_name(&self) -> &str {
            "spe-a"
        }
        fn provides(&self, m: MetricName) -> bool {
            m == names::SELECTIVITY || m == names::COST
        }
        fn fetch(&self, m: MetricName) -> EntityValues<u32> {
            let v = if m == names::SELECTIVITY { 2.0 } else { 0.5 };
            [(1, v)].into_iter().collect()
        }
    }

    /// SPE "B" from Fig. 4: exposes only raw counters.
    struct SpeB;
    impl MetricSource<u32> for SpeB {
        fn source_name(&self) -> &str {
            "spe-b"
        }
        fn provides(&self, m: MetricName) -> bool {
            matches!(m, m if m == names::TUPLES_IN || m == names::TUPLES_OUT || m == names::CPU_TIME)
        }
        fn fetch(&self, m: MetricName) -> EntityValues<u32> {
            let v = if m == names::TUPLES_IN {
                10.0
            } else if m == names::TUPLES_OUT {
                20.0
            } else {
                5.0
            };
            [(1, v)].into_iter().collect()
        }
    }

    fn provider_with_derivations() -> MetricProvider<u32> {
        let mut p = MetricProvider::new();
        p.define(ratio_metric(
            names::SELECTIVITY,
            names::TUPLES_OUT,
            names::TUPLES_IN,
        ));
        p.define(ratio_metric(names::COST, names::CPU_TIME, names::TUPLES_IN));
        p
    }

    #[test]
    fn fetches_directly_when_provided() {
        let mut p = provider_with_derivations();
        p.register(names::SELECTIVITY);
        p.update(SimTime::ZERO, &[&SpeA]).unwrap();
        assert_eq!(p.get(0, names::SELECTIVITY).unwrap()[&1], 2.0);
    }

    #[test]
    fn derives_when_not_provided() {
        let mut p = provider_with_derivations();
        p.register(names::SELECTIVITY);
        p.register(names::COST);
        p.update(SimTime::ZERO, &[&SpeB]).unwrap();
        assert_eq!(p.get(0, names::SELECTIVITY).unwrap()[&1], 2.0);
        assert_eq!(p.get(0, names::COST).unwrap()[&1], 0.5);
    }

    #[test]
    fn same_policy_works_on_both_spes() {
        let mut p = provider_with_derivations();
        p.register(names::SELECTIVITY);
        p.update(SimTime::ZERO, &[&SpeA, &SpeB]).unwrap();
        assert_eq!(p.get(0, names::SELECTIVITY).unwrap()[&1], 2.0);
        assert_eq!(p.get(1, names::SELECTIVITY).unwrap()[&1], 2.0);
    }

    #[test]
    fn missing_primitive_is_an_error() {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        p.define(MetricDef::new(names::QUEUE_SIZE, vec![], |_| {
            EntityValues::new()
        }));
        p.register(names::QUEUE_SIZE);
        let err = p.update(SimTime::ZERO, &[&SpeA]).unwrap_err();
        assert!(matches!(err, MetricError::MissingPrimitive { .. }));
    }

    #[test]
    fn undefined_derived_is_an_error() {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        p.register(names::HIGHEST_RATE);
        let err = p.update(SimTime::ZERO, &[&SpeA]).unwrap_err();
        assert_eq!(err, MetricError::UndefinedDerived(names::HIGHEST_RATE));
    }

    #[test]
    fn dependency_cycle_detected() {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        let a = MetricName("cyc.a");
        let b = MetricName("cyc.b");
        p.define(MetricDef::new(a, vec![b], |_| EntityValues::new()));
        p.define(MetricDef::new(b, vec![a], |_| EntityValues::new()));
        p.register(a);
        let err = p.update(SimTime::ZERO, &[&SpeA]).unwrap_err();
        assert!(matches!(err, MetricError::DependencyCycle(_)));
    }

    #[test]
    fn cache_prevents_duplicate_fetches() {
        use std::cell::Cell;
        struct Counting(Cell<u32>);
        impl MetricSource<u32> for Counting {
            fn source_name(&self) -> &str {
                "counting"
            }
            fn provides(&self, m: MetricName) -> bool {
                m == names::TUPLES_IN
            }
            fn fetch(&self, _: MetricName) -> EntityValues<u32> {
                self.0.set(self.0.get() + 1);
                [(1, 4.0)].into_iter().collect()
            }
        }
        let mut p: MetricProvider<u32> = MetricProvider::new();
        // Two derived metrics that both depend on TUPLES_IN.
        p.define(MetricDef::new(MetricName("d1"), vec![names::TUPLES_IN], |d| {
            d[0].clone()
        }));
        p.define(MetricDef::new(MetricName("d2"), vec![names::TUPLES_IN], |d| {
            d[0].clone()
        }));
        p.register(MetricName("d1"));
        p.register(MetricName("d2"));
        let src = Counting(Cell::new(0));
        p.update(SimTime::ZERO, &[&src]).unwrap();
        assert_eq!(src.0.get(), 1, "TUPLES_IN fetched once per period");
    }

    /// Serves selectivity directly; fails every fetch when told to.
    struct Flaky(std::cell::Cell<bool>);
    impl MetricSource<u32> for Flaky {
        fn source_name(&self) -> &str {
            "flaky"
        }
        fn provides(&self, m: MetricName) -> bool {
            m == names::SELECTIVITY
        }
        fn fetch(&self, _: MetricName) -> EntityValues<u32> {
            [(1, 9.0)].into_iter().collect()
        }
        fn try_fetch(
            &self,
            m: MetricName,
            _now: SimTime,
        ) -> Result<EntityValues<u32>, FetchError> {
            if self.0.get() {
                Err(FetchError::new("backend down"))
            } else {
                Ok(self.fetch(m))
            }
        }
    }

    #[test]
    fn failing_source_does_not_poison_healthy_ones() {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        p.register(names::SELECTIVITY);
        let flaky = Flaky(std::cell::Cell::new(true));
        let errors = p.update_reporting(SimTime::ZERO, &[&flaky, &SpeA]);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].0, 0, "only the flaky source errors");
        assert!(errors[0].1.is_transient());
        assert_eq!(
            p.get(1, names::SELECTIVITY).unwrap()[&1],
            2.0,
            "healthy source committed"
        );
    }

    #[test]
    fn failing_source_holds_its_last_values() {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        p.register(names::SELECTIVITY);
        let flaky = Flaky(std::cell::Cell::new(false));
        p.update(SimTime::ZERO, &[&flaky]).unwrap();
        assert_eq!(p.get(0, names::SELECTIVITY).unwrap()[&1], 9.0);
        flaky.0.set(true);
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        let err = p.update(now, &[&flaky]).unwrap_err();
        assert!(matches!(err, MetricError::FetchFailed { .. }));
        assert_eq!(
            p.get(0, names::SELECTIVITY).unwrap()[&1],
            9.0,
            "previous values held across the outage"
        );
    }

    #[test]
    fn config_errors_are_not_transient() {
        let err = MetricError::UndefinedDerived(names::HIGHEST_RATE);
        assert!(!err.is_transient());
        assert!(MetricError::FetchFailed {
            metric: names::QUEUE_SIZE,
            source: "s".into(),
            reason: "r".into(),
        }
        .is_transient());
    }
}
