//! Deterministic fault injection for the metric and scheduling pipeline.
//!
//! A [`FaultPlan`] describes *when* (sim-time windows), *where* (metric
//! source / kernel operation) and *how often* (probability under a fixed
//! seed) faults strike. Drivers consult it while fetching metrics and the
//! simulated kernel consults it (via a fault hook) while applying
//! schedules, so one plan exercises every failure mode the Lachesis
//! supervisor must survive:
//!
//! * **fetch failures** — a whole driver fetch errors (metrics backend down),
//! * **metric dropouts** — individual points vanish from a fetch,
//! * **NaN values** — individual points are garbage,
//! * **stale metrics** — the source freezes: it keeps serving the values it
//!   had when the window opened, with their old timestamps,
//! * **fetch latency spikes** — the fetch serves data as of `now − delay`,
//! * **apply failures** — scheduler-control syscalls (nice/cgroup writes)
//!   fail transiently.
//!
//! All randomness flows from one seed through a counter-mode splitmix64,
//! so a run with the same plan and the same call sequence is bit-for-bit
//! reproducible.

use std::collections::BTreeMap;
use std::fmt;

use simos::{SimDuration, SimTime};

/// How a fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The whole fetch call fails (metrics backend unreachable).
    FetchFailure,
    /// Individual metric points are dropped from fetch results.
    MetricDropout,
    /// Individual metric points are replaced by NaN.
    NanValues,
    /// The source freezes: it serves the values it had at the window start
    /// (with their old timestamps) for the whole window.
    StaleMetrics,
    /// Fetches are slow: they serve data as of `now − delay`.
    FetchLatency {
        /// How far behind real time the served data lags.
        delay: SimDuration,
    },
    /// A scheduler-control kernel operation fails (nice / cgroup write).
    ApplyFailure {
        /// Restrict to one kernel operation (e.g. `"set_nice"`); `None`
        /// hits every operation.
        op: Option<&'static str>,
    },
    /// An SPE operator crashes (fail-stop) at the rule's window start.
    /// The operator is named by the rule's `source` field; the SPE layer
    /// consults [`FaultPlan::crash_time`] at deploy to schedule the
    /// poison.
    OperatorCrash,
    /// A restart attempt for a crashed operator fails, forcing the
    /// restart supervisor through its backoff schedule. The operator is
    /// named by the rule's `source` field.
    RestartFailure,
}

impl FaultKind {
    /// Stable label used for injection counters.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::FetchFailure => "fetch_failure",
            FaultKind::MetricDropout => "metric_dropout",
            FaultKind::NanValues => "nan_values",
            FaultKind::StaleMetrics => "stale_metrics",
            FaultKind::FetchLatency { .. } => "fetch_latency",
            FaultKind::ApplyFailure { .. } => "apply_failure",
            FaultKind::OperatorCrash => "operator_crash",
            FaultKind::RestartFailure => "restart_failure",
        }
    }
}

/// One fault rule: a kind, active window, target filter and probability.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// What goes wrong.
    pub kind: FaultKind,
    /// Start of the active window (inclusive).
    pub from: SimTime,
    /// End of the active window (exclusive).
    pub until: SimTime,
    /// Restrict to one metric source by name; `None` hits all sources.
    /// Ignored for [`FaultKind::ApplyFailure`].
    pub source: Option<String>,
    /// Chance that one decision (fetch call / point / kernel op) faults.
    pub probability: f64,
}

impl FaultRule {
    fn active(&self, now: SimTime) -> bool {
        now >= self.from && now < self.until
    }

    fn matches_source(&self, source: &str) -> bool {
        self.source.as_deref().is_none_or(|s| s == source)
    }
}

/// Per-point verdict for one fetched metric sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PointFault {
    /// Drop the point entirely.
    pub drop: bool,
    /// Replace the value by NaN.
    pub nan: bool,
}

/// A seedable, windowed fault-injection plan (see the module docs).
pub struct FaultPlan {
    seed: u64,
    counter: u64,
    rules: Vec<FaultRule>,
    injected: BTreeMap<&'static str, u64>,
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("rules", &self.rules.len())
            .field("injected", &self.injected)
            .finish()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Creates an empty plan; all randomness derives from `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            counter: 0,
            rules: Vec::new(),
            injected: BTreeMap::new(),
        }
    }

    /// Adds a rule and returns the plan (builder style).
    pub fn rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Whole-fetch failures for `source` (`None` = all) in `[from, until)`.
    pub fn fetch_failure(
        self,
        source: Option<&str>,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::FetchFailure,
            from,
            until,
            source: source.map(str::to_owned),
            probability,
        })
    }

    /// Per-point dropouts for all sources in `[from, until)`.
    pub fn metric_dropout(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::MetricDropout,
            from,
            until,
            source: None,
            probability,
        })
    }

    /// Per-point NaN corruption for all sources in `[from, until)`.
    pub fn nan_values(self, from: SimTime, until: SimTime, probability: f64) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::NanValues,
            from,
            until,
            source: None,
            probability,
        })
    }

    /// Freezes `source` (`None` = all) during `[from, until)`: fetches
    /// serve the values the store had at `from`.
    pub fn stale_metrics(self, source: Option<&str>, from: SimTime, until: SimTime) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::StaleMetrics,
            from,
            until,
            source: source.map(str::to_owned),
            probability: 1.0,
        })
    }

    /// Fetch latency spikes: with `probability`, a fetch in the window
    /// serves data as of `now − delay`.
    pub fn fetch_latency(
        self,
        from: SimTime,
        until: SimTime,
        delay: SimDuration,
        probability: f64,
    ) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::FetchLatency { delay },
            from,
            until,
            source: None,
            probability,
        })
    }

    /// Scheduler-apply failures for kernel operation `op` (`None` = every
    /// operation) in `[from, until)`.
    pub fn apply_failure(
        self,
        op: Option<&'static str>,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::ApplyFailure { op },
            from,
            until,
            source: None,
            probability,
        })
    }

    /// Crashes (fail-stop) the operator labelled `label` at sim time `at`.
    /// The SPE layer consults [`FaultPlan::crash_time`] at deploy time.
    pub fn operator_crash(self, label: &str, at: SimTime) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::OperatorCrash,
            from: at,
            until: at + SimDuration::from_nanos(1),
            source: Some(label.to_owned()),
            probability: 1.0,
        })
    }

    /// Restart attempts for operator `label` (`None` = any operator) fail
    /// with `probability` during `[from, until)`, forcing the restart
    /// supervisor through its backoff schedule.
    pub fn restart_failure(
        self,
        label: Option<&str>,
        from: SimTime,
        until: SimTime,
        probability: f64,
    ) -> Self {
        self.rule(FaultRule {
            kind: FaultKind::RestartFailure,
            from,
            until,
            source: label.map(str::to_owned),
            probability,
        })
    }

    /// One deterministic coin flip with probability `p`.
    fn decide(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.counter += 1;
        let unit = (splitmix64(self.seed ^ self.counter.wrapping_mul(0xA076_1D64_78BD_642F)) >> 11)
            as f64
            / (1u64 << 53) as f64;
        unit < p
    }

    fn count(&mut self, label: &'static str) {
        *self.injected.entry(label).or_insert(0) += 1;
    }

    /// Should this whole fetch call fail? (Consult once per fetch.)
    pub fn fetch_fails(&mut self, source: &str, now: SimTime) -> bool {
        for i in 0..self.rules.len() {
            let r = &self.rules[i];
            if r.kind == FaultKind::FetchFailure && r.active(now) && r.matches_source(source) {
                let p = r.probability;
                if self.decide(p) {
                    self.count("fetch_failure");
                    return true;
                }
            }
        }
        false
    }

    /// How far back in time this fetch should read, if a staleness or
    /// latency fault is active. Returns the cutoff instant to read at.
    pub fn fetch_cutoff(&mut self, source: &str, now: SimTime) -> Option<SimTime> {
        let mut cutoff: Option<SimTime> = None;
        for i in 0..self.rules.len() {
            let (kind, from, p) = {
                let r = &self.rules[i];
                if !r.active(now) || !r.matches_source(source) {
                    continue;
                }
                (r.kind, r.from, r.probability)
            };
            let candidate = match kind {
                FaultKind::StaleMetrics => {
                    if !self.decide(p) {
                        continue;
                    }
                    self.count("stale_metrics");
                    from
                }
                FaultKind::FetchLatency { delay } => {
                    if !self.decide(p) {
                        continue;
                    }
                    self.count("fetch_latency");
                    SimTime::from_nanos(now.as_nanos().saturating_sub(delay.as_nanos()))
                }
                _ => continue,
            };
            cutoff = Some(match cutoff {
                Some(c) if c <= candidate => c,
                _ => candidate,
            });
        }
        cutoff
    }

    /// Per-point verdict (dropout / NaN). Consult once per fetched point.
    pub fn point_fault(&mut self, source: &str, now: SimTime) -> PointFault {
        let mut out = PointFault::default();
        for i in 0..self.rules.len() {
            let (kind, p) = {
                let r = &self.rules[i];
                if !r.active(now) || !r.matches_source(source) {
                    continue;
                }
                (r.kind, r.probability)
            };
            match kind {
                FaultKind::MetricDropout if !out.drop && self.decide(p) => {
                    self.count("metric_dropout");
                    out.drop = true;
                }
                FaultKind::NanValues if !out.nan && self.decide(p) => {
                    self.count("nan_values");
                    out.nan = true;
                }
                _ => {}
            }
        }
        out
    }

    /// Should this scheduler-control kernel operation fail? Plug into
    /// `Kernel::set_fault_hook`.
    pub fn kernel_fault(&mut self, op: &'static str, now: SimTime) -> bool {
        for i in 0..self.rules.len() {
            let (rule_op, p) = {
                let r = &self.rules[i];
                let FaultKind::ApplyFailure { op: rule_op } = r.kind else {
                    continue;
                };
                if !r.active(now) {
                    continue;
                }
                (rule_op, r.probability)
            };
            if rule_op.is_none_or(|o| o == op) && self.decide(p) {
                self.count("apply_failure");
                return true;
            }
        }
        false
    }

    /// The earliest scheduled crash instant for operator `label`, if any
    /// [`FaultKind::OperatorCrash`] rule names it. Pure query — the SPE
    /// reads it at deploy time and materializes the crash itself (then
    /// records it via [`FaultPlan::record_injected`]).
    pub fn crash_time(&self, label: &str) -> Option<SimTime> {
        self.rules
            .iter()
            .filter(|r| r.kind == FaultKind::OperatorCrash && r.matches_source(label))
            .map(|r| r.from)
            .min()
    }

    /// Should this restart attempt for operator `label` fail? Consult once
    /// per attempt.
    pub fn restart_fails(&mut self, label: &str, now: SimTime) -> bool {
        for i in 0..self.rules.len() {
            let p = {
                let r = &self.rules[i];
                if r.kind != FaultKind::RestartFailure
                    || !r.active(now)
                    || !r.matches_source(label)
                {
                    continue;
                }
                r.probability
            };
            if self.decide(p) {
                self.count("restart_failure");
                return true;
            }
        }
        false
    }

    /// Records a fault that an upper layer materialized itself (e.g. an
    /// operator crash fired by the SPE at the instant returned by
    /// [`FaultPlan::crash_time`]) so it appears in the injection counters.
    pub fn record_injected(&mut self, label: &'static str) {
        self.count(label);
    }

    /// How many faults of each kind have been injected so far.
    pub fn injected(&self) -> &BTreeMap<&'static str, u64> {
        &self.injected
    }

    /// Total injected faults across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn windows_gate_injection() {
        let mut plan = FaultPlan::new(1).fetch_failure(None, t(5), t(10), 1.0);
        assert!(!plan.fetch_fails("storm", t(4)));
        assert!(plan.fetch_fails("storm", t(5)));
        assert!(plan.fetch_fails("storm", t(9)));
        assert!(!plan.fetch_fails("storm", t(10)), "window end is exclusive");
        assert_eq!(plan.injected()["fetch_failure"], 2);
    }

    #[test]
    fn source_filter_applies() {
        let mut plan = FaultPlan::new(1).fetch_failure(Some("flink"), t(0), t(10), 1.0);
        assert!(plan.fetch_fails("flink", t(1)));
        assert!(!plan.fetch_fails("storm", t(1)));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let run = |seed| {
            let mut plan = FaultPlan::new(seed).metric_dropout(t(0), t(100), 0.5);
            (0..64)
                .map(|i| plan.point_fault("s", t(i)).drop)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
        let hits = run(7).iter().filter(|&&d| d).count();
        assert!(hits > 10 && hits < 54, "p=0.5 injects roughly half: {hits}");
    }

    #[test]
    fn stale_metrics_freeze_at_window_start() {
        let mut plan = FaultPlan::new(3).stale_metrics(None, t(20), t(30), );
        assert_eq!(plan.fetch_cutoff("s", t(19)), None);
        assert_eq!(plan.fetch_cutoff("s", t(25)), Some(t(20)));
        assert_eq!(plan.fetch_cutoff("s", t(30)), None);
    }

    #[test]
    fn fetch_latency_lags_now() {
        let mut plan =
            FaultPlan::new(3).fetch_latency(t(0), t(100), SimDuration::from_secs(4), 1.0);
        assert_eq!(plan.fetch_cutoff("s", t(10)), Some(t(6)));
    }

    #[test]
    fn overlapping_cutoffs_take_the_oldest() {
        let mut plan = FaultPlan::new(3)
            .stale_metrics(None, t(20), t(30))
            .fetch_latency(t(0), t(100), SimDuration::from_secs(2), 1.0);
        // At t=25: stale would read at 20, latency at 23 — oldest wins.
        assert_eq!(plan.fetch_cutoff("s", t(25)), Some(t(20)));
    }

    #[test]
    fn kernel_fault_filters_by_op() {
        let mut plan = FaultPlan::new(9).apply_failure(Some("set_nice"), t(0), t(10), 1.0);
        assert!(plan.kernel_fault("set_nice", t(1)));
        assert!(!plan.kernel_fault("set_cpu_shares", t(1)));
        assert_eq!(plan.injected_total(), 1);
    }

    #[test]
    fn operator_crash_is_a_pure_schedule_query() {
        let plan = FaultPlan::new(1)
            .operator_crash("etl/map", t(30))
            .operator_crash("etl/map", t(12))
            .operator_crash("etl/sink", t(5));
        assert_eq!(plan.crash_time("etl/map"), Some(t(12)), "earliest wins");
        assert_eq!(plan.crash_time("etl/sink"), Some(t(5)));
        assert_eq!(plan.crash_time("etl/src"), None);
    }

    #[test]
    fn restart_failures_window_and_filter_by_label() {
        let mut plan = FaultPlan::new(2).restart_failure(Some("op"), t(5), t(10), 1.0);
        assert!(!plan.restart_fails("op", t(4)));
        assert!(plan.restart_fails("op", t(6)));
        assert!(!plan.restart_fails("other", t(6)));
        assert!(!plan.restart_fails("op", t(10)), "window end is exclusive");
        assert_eq!(plan.injected()["restart_failure"], 1);
        plan.record_injected("operator_crash");
        assert_eq!(plan.injected()["operator_crash"], 1);
    }

    #[test]
    fn nan_and_dropout_can_coexist() {
        let mut plan = FaultPlan::new(5)
            .metric_dropout(t(0), t(10), 1.0)
            .nan_values(t(0), t(10), 1.0);
        let f = plan.point_fault("s", t(1));
        assert!(f.drop && f.nan);
    }
}
