//! # lachesis-metrics — metric model, store and provider
//!
//! The metric subsystem of the Lachesis reproduction (paper §4, §5.2):
//!
//! * [`TimeSeriesStore`] — a Graphite-like time-series database with 1 s
//!   resolution, through which SPEs expose their runtime metrics,
//! * [`MetricName`] / [`MetricDef`] — metrics and their dependency graphs
//!   (Definition 3.1),
//! * [`MetricProvider`] — Algorithm 3: computes each requested metric per
//!   SPE driver, fetching it directly where the SPE provides it and
//!   deriving it from dependencies where it does not.
//!
//! ## Example
//!
//! ```
//! use lachesis_metrics::{names, ratio_metric, MetricProvider};
//!
//! let mut provider: MetricProvider<u64> = MetricProvider::new();
//! provider.define(ratio_metric(names::SELECTIVITY, names::TUPLES_OUT, names::TUPLES_IN));
//! provider.register(names::SELECTIVITY);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod fault;
mod metric;
mod provider;
mod store;

pub use fault::{FaultKind, FaultPlan, FaultRule, PointFault};
pub use metric::{names, ratio_metric, DepValues, EntityValues, MetricDef, MetricName, Sample};
pub use provider::{FetchError, MetricError, MetricProvider, MetricSource};
pub use store::TimeSeriesStore;
