//! Metric names, values and derived-metric definitions (paper Def. 3.1).

use std::collections::HashMap;
use std::fmt;
use std::ops::Index;

use simos::{SimDuration, SimTime};

/// The name of a metric, e.g. `"queue.size"`.
///
/// Names are interned statically: every metric used by policies and drivers
/// is a `&'static str` constant (see [`names`]), so comparisons are cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricName(pub &'static str);

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Well-known metric names shared between SPE drivers and policies.
pub mod names {
    use super::MetricName;

    /// Tuples currently waiting in an operator's input queue.
    pub const QUEUE_SIZE: MetricName = MetricName("queue.size");
    /// Seconds the tuple at the head of the input queue has waited.
    pub const HEAD_WAIT: MetricName = MetricName("queue.head_wait");
    /// Total tuples an operator has ingested.
    pub const TUPLES_IN: MetricName = MetricName("op.tuples_in");
    /// Total tuples an operator has emitted.
    pub const TUPLES_OUT: MetricName = MetricName("op.tuples_out");
    /// Total CPU seconds an operator has consumed.
    pub const CPU_TIME: MetricName = MetricName("op.cpu_time");
    /// Average seconds of CPU per ingested tuple.
    pub const COST: MetricName = MetricName("op.cost");
    /// Average output tuples per input tuple.
    pub const SELECTIVITY: MetricName = MetricName("op.selectivity");
    /// Product of selectivities along an operator's best output path.
    pub const PATH_SELECTIVITY: MetricName = MetricName("path.selectivity");
    /// Sum of costs along an operator's best output path.
    pub const PATH_COST: MetricName = MetricName("path.cost");
    /// The Highest-Rate policy goal: path selectivity over path cost.
    pub const HIGHEST_RATE: MetricName = MetricName("policy.highest_rate");
    /// Mean processing latency observed at an egress operator.
    pub const LATENCY: MetricName = MetricName("sink.latency");
    /// Operator health: 1.0 up, 0.0 down (crashed, awaiting restart).
    pub const HEALTH: MetricName = MetricName("op.health");
    /// Total tuples dropped from an operator's input queue by shed-mode
    /// overload protection (cumulative, like the tuple counters).
    pub const SHED: MetricName = MetricName("queue.shed");
}

/// One sampled metric value and (if known) when it was sampled.
///
/// The timestamp lets consumers detect *stale* metrics — a source that
/// keeps serving old data looks healthy by value but not by age. `at:
/// None` means the source attached no timestamp; such samples are treated
/// as fresh, which matches the previous (timestamp-less) behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// The metric value.
    pub value: f64,
    /// When the value was sampled, if the source knows.
    pub at: Option<SimTime>,
}

impl Sample {
    /// A sample without a timestamp (treated as fresh).
    pub fn new(value: f64) -> Self {
        Sample { value, at: None }
    }

    /// A sample taken at `at`.
    pub fn taken_at(value: f64, at: SimTime) -> Self {
        Sample {
            value,
            at: Some(at),
        }
    }

    /// The sample's age relative to `now` (`None` if untimestamped).
    pub fn age(&self, now: SimTime) -> Option<SimDuration> {
        let at = self.at?;
        Some(SimDuration::from_nanos(
            now.as_nanos().saturating_sub(at.as_nanos()),
        ))
    }

    /// Whether the sample is older than `max_age`. Untimestamped samples
    /// are never considered stale.
    pub fn is_stale(&self, now: SimTime, max_age: SimDuration) -> bool {
        self.age(now).is_some_and(|a| a > max_age)
    }
}

/// Per-entity metric values at one scheduling period.
///
/// A thin wrapper over a hash map of [`Sample`]s that keeps the ergonomics
/// of the plain `HashMap<K, f64>` it replaced: build it from `(K, f64)`
/// pairs, read values with [`get`](EntityValues::get) or indexing, and
/// reach for [`sample`](EntityValues::sample) / [`samples`](EntityValues::samples)
/// only when timestamps matter.
#[derive(Debug, Clone)]
pub struct EntityValues<K> {
    map: HashMap<K, Sample>,
}

impl<K: Eq + std::hash::Hash> PartialEq for EntityValues<K> {
    fn eq(&self, other: &Self) -> bool {
        self.map == other.map
    }
}

impl<K> Default for EntityValues<K> {
    fn default() -> Self {
        EntityValues {
            map: HashMap::new(),
        }
    }
}

impl<K: Eq + std::hash::Hash> EntityValues<K> {
    /// Creates an empty value map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an untimestamped value.
    pub fn insert(&mut self, key: K, value: f64) {
        self.map.insert(key, Sample::new(value));
    }

    /// Inserts a value sampled at `at`.
    pub fn insert_at(&mut self, key: K, value: f64, at: SimTime) {
        self.map.insert(key, Sample::taken_at(value, at));
    }

    /// Inserts a full sample.
    pub fn insert_sample(&mut self, key: K, sample: Sample) {
        self.map.insert(key, sample);
    }

    /// One entity's value.
    pub fn get(&self, key: &K) -> Option<f64> {
        self.map.get(key).map(|s| s.value)
    }

    /// One entity's full sample (value + timestamp).
    pub fn sample(&self, key: &K) -> Option<Sample> {
        self.map.get(key).copied()
    }

    /// Whether the entity has a value.
    pub fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Number of entities with values.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no entity has a value.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(entity, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, f64)> + '_ {
        self.map.iter().map(|(k, s)| (k, s.value))
    }

    /// Iterates `(entity, sample)` pairs.
    pub fn samples(&self) -> impl Iterator<Item = (&K, &Sample)> + '_ {
        self.map.iter()
    }

    /// Iterates the entities.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.map.keys()
    }
}

impl<K: Eq + std::hash::Hash> Index<&K> for EntityValues<K> {
    type Output = f64;

    fn index(&self, key: &K) -> &f64 {
        &self.map[key].value
    }
}

impl<K: Eq + std::hash::Hash> FromIterator<(K, f64)> for EntityValues<K> {
    fn from_iter<I: IntoIterator<Item = (K, f64)>>(iter: I) -> Self {
        EntityValues {
            map: iter
                .into_iter()
                .map(|(k, v)| (k, Sample::new(v)))
                .collect(),
        }
    }
}

impl<K: Eq + std::hash::Hash> FromIterator<(K, Sample)> for EntityValues<K> {
    fn from_iter<I: IntoIterator<Item = (K, Sample)>>(iter: I) -> Self {
        EntityValues {
            map: iter.into_iter().collect(),
        }
    }
}

/// Dependency values handed to a derived metric's combine function, in the
/// same order as the metric's declared dependencies.
pub type DepValues<'a, K> = [&'a EntityValues<K>];

/// The boxed combine function of a derived metric.
type CombineFn<K> = Box<dyn Fn(&DepValues<'_, K>) -> EntityValues<K>>;

/// A derived metric: a name, its dependencies, and a function computing its
/// per-entity values from the dependencies' values.
///
/// Topology-aware metrics (e.g. the Highest-Rate path metrics) capture the
/// query graph in the combine closure; the provider itself stays agnostic.
pub struct MetricDef<K> {
    name: MetricName,
    deps: Vec<MetricName>,
    combine: CombineFn<K>,
}

impl<K> fmt::Debug for MetricDef<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricDef")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

impl<K> MetricDef<K> {
    /// Defines a derived metric.
    pub fn new(
        name: MetricName,
        deps: Vec<MetricName>,
        combine: impl Fn(&DepValues<'_, K>) -> EntityValues<K> + 'static,
    ) -> Self {
        MetricDef {
            name,
            deps,
            combine: Box::new(combine),
        }
    }

    /// The metric's name.
    pub fn name(&self) -> MetricName {
        self.name
    }

    /// The metric's dependencies, in combine-argument order.
    pub fn deps(&self) -> &[MetricName] {
        &self.deps
    }

    pub(crate) fn combine(&self, deps: &DepValues<'_, K>) -> EntityValues<K> {
        (self.combine)(deps)
    }
}

/// Convenience: builds a derived metric that divides dep 0 by dep 1
/// entity-wise (e.g. selectivity = out/in, cost = cpu/in).
pub fn ratio_metric<K: Clone + Eq + std::hash::Hash + 'static>(
    name: MetricName,
    numerator: MetricName,
    denominator: MetricName,
) -> MetricDef<K> {
    MetricDef::new(name, vec![numerator, denominator], |deps: &DepValues<'_, K>| {
        let num = deps[0];
        let den = deps[1];
        num.samples()
            .filter_map(|(k, n)| {
                let d = den.sample(k)?;
                if d.value == 0.0 {
                    return None;
                }
                // The derived sample is only as fresh as its oldest input.
                let at = match (n.at, d.at) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                Some((
                    k.clone(),
                    Sample {
                        value: n.value / d.value,
                        at,
                    },
                ))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_display() {
        assert_eq!(names::QUEUE_SIZE.to_string(), "queue.size");
    }

    #[test]
    fn ratio_metric_divides_entity_wise() {
        let def: MetricDef<u32> = ratio_metric(names::SELECTIVITY, names::TUPLES_OUT, names::TUPLES_IN);
        let out: EntityValues<u32> = [(1, 30.0), (2, 10.0), (3, 5.0)].into_iter().collect();
        let inp: EntityValues<u32> = [(1, 10.0), (2, 0.0)].into_iter().collect();
        let result = def.combine(&[&out, &inp]);
        assert_eq!(result.get(&1), Some(3.0));
        assert_eq!(result.get(&2), None, "division by zero dropped");
        assert_eq!(result.get(&3), None, "missing denominator dropped");
    }

    #[test]
    fn ratio_metric_keeps_oldest_timestamp() {
        let def: MetricDef<u32> = ratio_metric(names::SELECTIVITY, names::TUPLES_OUT, names::TUPLES_IN);
        let t5 = SimTime::ZERO + SimDuration::from_secs(5);
        let t9 = SimTime::ZERO + SimDuration::from_secs(9);
        let mut out: EntityValues<u32> = EntityValues::new();
        out.insert_at(1, 30.0, t9);
        out.insert(2, 12.0);
        let mut inp: EntityValues<u32> = EntityValues::new();
        inp.insert_at(1, 10.0, t5);
        inp.insert_at(2, 4.0, t5);
        let result = def.combine(&[&out, &inp]);
        assert_eq!(result.sample(&1).unwrap().at, Some(t5), "oldest input wins");
        assert_eq!(result.sample(&2).unwrap().at, Some(t5), "known side wins");
    }

    #[test]
    fn sample_age_and_staleness() {
        let now = SimTime::ZERO + SimDuration::from_secs(10);
        let old = Sample::taken_at(1.0, SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(old.age(now), Some(SimDuration::from_secs(7)));
        assert!(old.is_stale(now, SimDuration::from_secs(5)));
        assert!(!old.is_stale(now, SimDuration::from_secs(7)), "boundary is fresh");
        assert!(!Sample::new(1.0).is_stale(now, SimDuration::ZERO), "untimestamped never stale");
    }

    #[test]
    fn metric_def_reports_deps() {
        let def: MetricDef<u32> =
            MetricDef::new(names::COST, vec![names::CPU_TIME, names::TUPLES_IN], |_| {
                EntityValues::new()
            });
        assert_eq!(def.name(), names::COST);
        assert_eq!(def.deps(), &[names::CPU_TIME, names::TUPLES_IN]);
    }
}
