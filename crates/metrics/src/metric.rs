//! Metric names, values and derived-metric definitions (paper Def. 3.1).

use std::collections::HashMap;
use std::fmt;

/// The name of a metric, e.g. `"queue.size"`.
///
/// Names are interned statically: every metric used by policies and drivers
/// is a `&'static str` constant (see [`names`]), so comparisons are cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricName(pub &'static str);

impl fmt::Display for MetricName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// Well-known metric names shared between SPE drivers and policies.
pub mod names {
    use super::MetricName;

    /// Tuples currently waiting in an operator's input queue.
    pub const QUEUE_SIZE: MetricName = MetricName("queue.size");
    /// Seconds the tuple at the head of the input queue has waited.
    pub const HEAD_WAIT: MetricName = MetricName("queue.head_wait");
    /// Total tuples an operator has ingested.
    pub const TUPLES_IN: MetricName = MetricName("op.tuples_in");
    /// Total tuples an operator has emitted.
    pub const TUPLES_OUT: MetricName = MetricName("op.tuples_out");
    /// Total CPU seconds an operator has consumed.
    pub const CPU_TIME: MetricName = MetricName("op.cpu_time");
    /// Average seconds of CPU per ingested tuple.
    pub const COST: MetricName = MetricName("op.cost");
    /// Average output tuples per input tuple.
    pub const SELECTIVITY: MetricName = MetricName("op.selectivity");
    /// Product of selectivities along an operator's best output path.
    pub const PATH_SELECTIVITY: MetricName = MetricName("path.selectivity");
    /// Sum of costs along an operator's best output path.
    pub const PATH_COST: MetricName = MetricName("path.cost");
    /// The Highest-Rate policy goal: path selectivity over path cost.
    pub const HIGHEST_RATE: MetricName = MetricName("policy.highest_rate");
    /// Mean processing latency observed at an egress operator.
    pub const LATENCY: MetricName = MetricName("sink.latency");
}

/// Per-entity metric values at one scheduling period.
pub type EntityValues<K> = HashMap<K, f64>;

/// Dependency values handed to a derived metric's combine function, in the
/// same order as the metric's declared dependencies.
pub type DepValues<'a, K> = [&'a EntityValues<K>];

/// The boxed combine function of a derived metric.
type CombineFn<K> = Box<dyn Fn(&DepValues<'_, K>) -> EntityValues<K>>;

/// A derived metric: a name, its dependencies, and a function computing its
/// per-entity values from the dependencies' values.
///
/// Topology-aware metrics (e.g. the Highest-Rate path metrics) capture the
/// query graph in the combine closure; the provider itself stays agnostic.
pub struct MetricDef<K> {
    name: MetricName,
    deps: Vec<MetricName>,
    combine: CombineFn<K>,
}

impl<K> fmt::Debug for MetricDef<K> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricDef")
            .field("name", &self.name)
            .field("deps", &self.deps)
            .finish_non_exhaustive()
    }
}

impl<K> MetricDef<K> {
    /// Defines a derived metric.
    pub fn new(
        name: MetricName,
        deps: Vec<MetricName>,
        combine: impl Fn(&DepValues<'_, K>) -> EntityValues<K> + 'static,
    ) -> Self {
        MetricDef {
            name,
            deps,
            combine: Box::new(combine),
        }
    }

    /// The metric's name.
    pub fn name(&self) -> MetricName {
        self.name
    }

    /// The metric's dependencies, in combine-argument order.
    pub fn deps(&self) -> &[MetricName] {
        &self.deps
    }

    pub(crate) fn combine(&self, deps: &DepValues<'_, K>) -> EntityValues<K> {
        (self.combine)(deps)
    }
}

/// Convenience: builds a derived metric that divides dep 0 by dep 1
/// entity-wise (e.g. selectivity = out/in, cost = cpu/in).
pub fn ratio_metric<K: Clone + Eq + std::hash::Hash + 'static>(
    name: MetricName,
    numerator: MetricName,
    denominator: MetricName,
) -> MetricDef<K> {
    MetricDef::new(name, vec![numerator, denominator], |deps: &DepValues<'_, K>| {
        let num = deps[0];
        let den = deps[1];
        num.iter()
            .filter_map(|(k, n)| {
                let d = *den.get(k)?;
                if d == 0.0 {
                    None
                } else {
                    Some((k.clone(), n / d))
                }
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_name_display() {
        assert_eq!(names::QUEUE_SIZE.to_string(), "queue.size");
    }

    #[test]
    fn ratio_metric_divides_entity_wise() {
        let def: MetricDef<u32> = ratio_metric(names::SELECTIVITY, names::TUPLES_OUT, names::TUPLES_IN);
        let out: EntityValues<u32> = [(1, 30.0), (2, 10.0), (3, 5.0)].into_iter().collect();
        let inp: EntityValues<u32> = [(1, 10.0), (2, 0.0)].into_iter().collect();
        let result = def.combine(&[&out, &inp]);
        assert_eq!(result.get(&1), Some(&3.0));
        assert_eq!(result.get(&2), None, "division by zero dropped");
        assert_eq!(result.get(&3), None, "missing denominator dropped");
    }

    #[test]
    fn metric_def_reports_deps() {
        let def: MetricDef<u32> =
            MetricDef::new(names::COST, vec![names::CPU_TIME, names::TUPLES_IN], |_| {
                EntityValues::new()
            });
        assert_eq!(def.name(), names::COST);
        assert_eq!(def.deps(), &[names::CPU_TIME, names::TUPLES_IN]);
    }
}
