//! Property tests of Algorithm 3 over randomly generated metric
//! dependency DAGs.

use std::cell::Cell;

use lachesis_metrics::{EntityValues, MetricDef, MetricName, MetricProvider, MetricSource};
use simos::SimTime;
use proptest::prelude::*;

/// Interned names for up to 16 synthetic metrics.
const NAMES: [MetricName; 16] = [
    MetricName("m0"),
    MetricName("m1"),
    MetricName("m2"),
    MetricName("m3"),
    MetricName("m4"),
    MetricName("m5"),
    MetricName("m6"),
    MetricName("m7"),
    MetricName("m8"),
    MetricName("m9"),
    MetricName("m10"),
    MetricName("m11"),
    MetricName("m12"),
    MetricName("m13"),
    MetricName("m14"),
    MetricName("m15"),
];

/// A source that provides the first `provided` metrics directly with value
/// `index + 1` for entity 0, counting fetches.
struct CountingSource {
    provided: usize,
    fetches: Cell<u32>,
}

impl MetricSource<u32> for CountingSource {
    fn source_name(&self) -> &str {
        "counting"
    }
    fn provides(&self, metric: MetricName) -> bool {
        NAMES[..self.provided].contains(&metric)
    }
    fn fetch(&self, metric: MetricName) -> EntityValues<u32> {
        self.fetches.set(self.fetches.get() + 1);
        let idx = NAMES.iter().position(|&n| n == metric).unwrap();
        [(0u32, (idx + 1) as f64)].into_iter().collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For a random DAG where metric i depends on a subset of metrics < i
    /// (sum semantics), resolution succeeds iff every reachable leaf is
    /// provided, each provided metric is fetched at most once, and derived
    /// values equal the reference computation.
    #[test]
    fn resolution_matches_reference(
        n in 2usize..16,
        provided in 1usize..8,
        dep_bits in proptest::collection::vec(0u16..u16::MAX, 16),
        register in proptest::collection::vec(0usize..16, 1..8),
    ) {
        let provided = provided.min(n);
        let mut p: MetricProvider<u32> = MetricProvider::new();
        // deps of metric i = { j < i : bit j of dep_bits[i] }, non-empty
        // forced for non-provided metrics by adding j = i-1.
        let mut deps_of: Vec<Vec<usize>> = vec![vec![]; n];
        for i in provided..n {
            let mut deps: Vec<usize> = (0..i).filter(|j| dep_bits[i] & (1 << j) != 0).collect();
            if deps.is_empty() {
                deps.push(i - 1);
            }
            deps_of[i] = deps.clone();
            let dep_names: Vec<MetricName> = deps.iter().map(|&j| NAMES[j]).collect();
            p.define(MetricDef::new(NAMES[i], dep_names, move |vals| {
                let mut out: EntityValues<u32> = EntityValues::new();
                let sum: f64 = vals.iter().filter_map(|v| v.get(&0)).sum();
                out.insert(0, sum);
                out
            }));
        }
        let registered: Vec<usize> = register.into_iter().map(|r| r % n).collect();
        for &r in &registered {
            p.register(NAMES[r]);
        }
        let src = CountingSource { provided, fetches: Cell::new(0) };
        p.update(SimTime::ZERO, &[&src]).expect("all leaves are provided");

        // Each provided metric fetched at most once per update.
        prop_assert!(src.fetches.get() as usize <= provided);

        // Reference: recursively computed values.
        fn reference(i: usize, provided: usize, deps_of: &[Vec<usize>]) -> f64 {
            if i < provided {
                (i + 1) as f64
            } else {
                deps_of[i].iter().map(|&j| reference(j, provided, deps_of)).sum()
            }
        }
        for &r in &registered {
            let got = p.get(0, NAMES[r]).unwrap()[&0];
            let want = reference(r, provided, &deps_of);
            prop_assert!((got - want).abs() < 1e-9, "metric {r}: {got} != {want}");
        }
    }

    /// A second update re-fetches (per-period caches are not reused across
    /// updates — Algorithm 3 L4 resets the cache each period).
    #[test]
    fn cache_is_per_period(provided in 1usize..8) {
        let mut p: MetricProvider<u32> = MetricProvider::new();
        for name in NAMES.iter().take(provided) {
            p.register(*name);
        }
        let src = CountingSource { provided, fetches: Cell::new(0) };
        p.update(SimTime::ZERO, &[&src]).unwrap();
        let first = src.fetches.get();
        p.update(SimTime::ZERO, &[&src]).unwrap();
        prop_assert_eq!(src.fetches.get(), first * 2);
    }
}
