//! Haren (Palyvos-Giannas et al., DEBS '19): a framework for ad-hoc
//! user-level thread scheduling policies in data streaming.
//!
//! Haren re-sorts operators by a pluggable priority function every
//! *scheduling period* (50 ms in the paper's evaluation, §6.4) using fresh
//! metrics read directly from the engine — the edge it holds over Lachesis'
//! 1 s Graphite-limited loop (Fig. 14/15). At each refresh the sorted
//! operators are **partitioned among the worker threads** (snake order for
//! balance); between refreshes each worker executes only its assigned
//! operators. A long period therefore leaves load imbalance uncorrected
//! (Fig. 15), and a blocked operator stalls a whole worker (Fig. 16).

use simos::{SimDuration, SimTime};
use spe::{Execution, PoolScheduler, PoolTask, PoolView};

/// Haren's pluggable priority functions (the ones evaluated in §6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HarenPolicy {
    /// Queue Size: more pending input → higher priority.
    QueueSize,
    /// First-Come-First-Serve: older head tuple → higher priority.
    Fcfs,
    /// Highest Rate: productive, inexpensive paths first.
    HighestRate,
}

impl HarenPolicy {
    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            HarenPolicy::QueueSize => "qs",
            HarenPolicy::Fcfs => "fcfs",
            HarenPolicy::HighestRate => "hr",
        }
    }
}

/// The Haren scheduling strategy.
#[derive(Debug)]
pub struct Haren {
    policy: HarenPolicy,
    period: SimDuration,
    batch: usize,
    workers: usize,
    /// Downstream pool indices per operator (for Highest Rate).
    downstream: Vec<Vec<usize>>,
    /// Per-worker operator assignments, priority order, refreshed each
    /// period.
    assignments: Vec<Vec<usize>>,
    next_refresh: SimTime,
}

impl Haren {
    /// Creates a Haren instance for a pool of `workers` threads.
    ///
    /// `downstream[i]` lists the pool indices fed by operator `i` (Haren is
    /// engine-coupled, so it knows the topology). Required by
    /// [`HarenPolicy::HighestRate`]; may be empty otherwise.
    pub fn new(
        policy: HarenPolicy,
        period: SimDuration,
        batch: usize,
        workers: usize,
        downstream: Vec<Vec<usize>>,
    ) -> Self {
        Haren {
            policy,
            period,
            batch: batch.max(1),
            workers: workers.max(1),
            downstream,
            assignments: Vec::new(),
            next_refresh: SimTime::ZERO,
        }
    }

    /// The paper's default configuration: 50 ms scheduling period.
    pub fn with_default_period(
        policy: HarenPolicy,
        workers: usize,
        downstream: Vec<Vec<usize>>,
    ) -> Self {
        Haren::new(policy, SimDuration::from_millis(50), 16, workers, downstream)
    }

    /// The re-sort period.
    pub fn period(&self) -> SimDuration {
        self.period
    }

    fn priority(&self, view: &PoolView<'_>, op: usize) -> f64 {
        // Ingress operators read from the external source, not from an
        // engine queue: queue-based policies rank them below every bolt
        // with pending work (sources run on leftover cycles).
        if view.ops[op].is_ingress()
            && matches!(self.policy, HarenPolicy::QueueSize | HarenPolicy::Fcfs)
        {
            return -1.0;
        }
        match self.policy {
            HarenPolicy::QueueSize => view.ops[op].in_queue().len() as f64,
            HarenPolicy::Fcfs => view.ops[op].in_queue().head_age(view.now).unwrap_or(0.0),
            HarenPolicy::HighestRate => self
                .highest_rate(view, op, 0)
                .map_or(0.0, |(s, c)| s / c.max(1e-12)),
        }
    }

    /// Best (selectivity-product, cost-sum) over output paths, from fresh
    /// per-operator averages.
    fn highest_rate(&self, view: &PoolView<'_>, op: usize, depth: usize) -> Option<(f64, f64)> {
        let sel = view.ops[op].avg_selectivity().unwrap_or(1.0);
        let cost = view.ops[op].avg_cost().unwrap_or(1e-6);
        let down = self.downstream.get(op).map(Vec::as_slice).unwrap_or(&[]);
        if down.is_empty() || depth > 64 {
            return Some((sel, cost));
        }
        let mut best: Option<(f64, f64)> = None;
        for &d in down {
            let (ds, dc) = self.highest_rate(view, d, depth + 1)?;
            let (ps, pc) = (sel * ds, cost + dc);
            if best.is_none_or(|(bs, bc)| ps / pc.max(1e-12) > bs / bc.max(1e-12)) {
                best = Some((ps, pc));
            }
        }
        best
    }

    /// Re-sorts operators by priority and partitions them among workers in
    /// snake order (1st to worker 0, 2nd to worker 1, ..., then back).
    fn refresh(&mut self, view: &PoolView<'_>) {
        let mut scored: Vec<(usize, f64)> = (0..view.ops.len())
            .map(|op| (op, self.priority(view, op)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        self.assignments = vec![Vec::new(); self.workers];
        for (rank, (op, _)) in scored.into_iter().enumerate() {
            let cycle = rank / self.workers;
            let pos = rank % self.workers;
            let w = if cycle.is_multiple_of(2) {
                pos
            } else {
                self.workers - 1 - pos
            };
            self.assignments[w].push(op);
        }
        self.next_refresh = view.now + self.period;
    }

    /// The current assignment of a worker (test hook).
    pub fn assignment(&self, worker: usize) -> &[usize] {
        self.assignments.get(worker).map_or(&[], Vec::as_slice)
    }
}

impl PoolScheduler for Haren {
    fn next_task(&mut self, view: &PoolView<'_>, worker: usize) -> Option<PoolTask> {
        if view.now >= self.next_refresh || self.assignments.len() != self.workers {
            self.refresh(view);
        }
        let list = self.assignments.get(worker % self.workers)?;
        for &op in list {
            if !view.in_flight[op]
                && !view.ops[op].in_queue().is_empty()
                && !view.ops[op].throttled()
            {
                return Some(PoolTask {
                    op,
                    batch: self.batch,
                });
            }
        }
        None
    }

    fn task_done(&mut self, _op: usize, _processed: usize) {}
}

/// The standard Haren deployment: one worker per core, the paper's 50 ms
/// period, and a small per-decision overhead.
pub fn haren_execution(
    workers: usize,
    policy: HarenPolicy,
    downstream: Vec<Vec<usize>>,
) -> Execution {
    Execution::WorkerPool {
        workers,
        scheduler: Box::new(Haren::with_default_period(policy, workers, downstream)),
        pick_cost: SimDuration::from_micros(3),
    }
}

/// Haren with an explicit scheduling period (the HAREN-1000 ablation of
/// Fig. 15 uses 1000 ms).
pub fn haren_execution_with_period(
    workers: usize,
    policy: HarenPolicy,
    period: SimDuration,
    downstream: Vec<Vec<usize>>,
) -> Execution {
    Execution::WorkerPool {
        workers,
        scheduler: Box::new(Haren::new(policy, period, 16, workers, downstream)),
        pick_cost: SimDuration::from_micros(3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimTime};
    use spe::{CostModel, OpCell, OpCellRef, OpCellSpec, PassThrough, Queue, Stage, Tuple};

    fn cells_with_queues(lens: &[usize]) -> (Kernel, Vec<OpCellRef>) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let cells = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let q = Queue::new(&mut kernel, &format!("q{i}"), node, None);
                for k in 0..len {
                    q.push(Tuple::new(
                        SimTime::ZERO + SimDuration::from_millis(k as u64),
                        k as u64,
                        vec![],
                    ));
                }
                OpCell::new(
                    OpCellSpec {
                        id: i,
                        name: format!("op#{i}"),
                        query: "q".into(),
                        node,
                        is_ingress: false,
                        in_queue: q,
                        sink: None,
                        blocking: None,
                        backlog_penalty: None,
                        net_delay: SimDuration::ZERO,
                        seed: i as u64,
                        batch_max: 1,
                    },
                    vec![Stage {
                        logical: i,
                        name: format!("op{i}"),
                        logic: Box::new(PassThrough),
                        cost: CostModel::micros(10),
                    }],
                )
            })
            .collect();
        (kernel, cells)
    }

    fn view<'a>(ops: &'a [OpCellRef], in_flight: &'a [bool], now: SimTime) -> PoolView<'a> {
        PoolView {
            ops,
            in_flight,
            now,
        }
    }

    #[test]
    fn qs_policy_assigns_biggest_queue_to_worker_zero() {
        let (_k, ops) = cells_with_queues(&[2, 9, 5]);
        let in_flight = vec![false; 3];
        let mut h = Haren::new(
            HarenPolicy::QueueSize,
            SimDuration::from_millis(50),
            8,
            1,
            vec![],
        );
        let task = h.next_task(&view(&ops, &in_flight, SimTime::ZERO), 0).unwrap();
        assert_eq!(task.op, 1);
    }

    #[test]
    fn snake_partition_balances_priorities() {
        let (_k, ops) = cells_with_queues(&[10, 9, 8, 7, 6, 5]);
        let in_flight = vec![false; 6];
        let mut h = Haren::new(
            HarenPolicy::QueueSize,
            SimDuration::from_millis(50),
            8,
            2,
            vec![],
        );
        let _ = h.next_task(&view(&ops, &in_flight, SimTime::ZERO), 0);
        // Priorities 10..5 -> ranks 0..5; snake over 2 workers:
        // worker0: ranks 0,3,4 (ops 0,3,4); worker1: ranks 1,2,5 (ops 1,2,5).
        assert_eq!(h.assignment(0), &[0, 3, 4]);
        assert_eq!(h.assignment(1), &[1, 2, 5]);
    }

    #[test]
    fn workers_only_run_their_assignment() {
        let (_k, ops) = cells_with_queues(&[10, 0]);
        let in_flight = vec![false; 2];
        let mut h = Haren::new(
            HarenPolicy::QueueSize,
            SimDuration::from_millis(50),
            8,
            2,
            vec![],
        );
        // Worker 0 owns op 0 (only non-empty op); worker 1 owns op 1.
        assert!(h.next_task(&view(&ops, &in_flight, SimTime::ZERO), 0).is_some());
        assert!(
            h.next_task(&view(&ops, &in_flight, SimTime::ZERO), 1).is_none(),
            "worker 1's assigned op is empty; it must NOT steal"
        );
    }

    #[test]
    fn assignments_are_stale_between_refreshes() {
        let (_k, ops) = cells_with_queues(&[9, 2]);
        let in_flight = vec![false; 2];
        let mut h = Haren::new(
            HarenPolicy::QueueSize,
            SimDuration::from_millis(50),
            8,
            2,
            vec![],
        );
        let t0 = SimTime::ZERO;
        let _ = h.next_task(&view(&ops, &in_flight, t0), 0);
        assert_eq!(h.assignment(0), &[0]);
        // Flip the queue sizes: op 1 becomes the big one.
        while ops[0].in_queue().pop().is_some() {}
        for k in 0..20 {
            ops[1].in_queue().push(Tuple::new(t0, k, vec![]));
        }
        // Before the period elapses, assignments don't change.
        let t1 = t0 + SimDuration::from_millis(10);
        let _ = h.next_task(&view(&ops, &in_flight, t1), 0);
        assert_eq!(h.assignment(0), &[0], "stale until the period elapses");
        // After the period, the refresh reassigns.
        let t2 = t0 + SimDuration::from_millis(60);
        let _ = h.next_task(&view(&ops, &in_flight, t2), 0);
        assert_eq!(h.assignment(0), &[1]);
    }

    #[test]
    fn fcfs_policy_orders_by_head_age() {
        let (_k, ops) = cells_with_queues(&[1, 1]);
        ops[0].in_queue().pop();
        ops[0]
            .in_queue()
            .push(Tuple::new(SimTime::ZERO + SimDuration::from_millis(500), 0, vec![]));
        let in_flight = vec![false; 2];
        let mut h = Haren::new(HarenPolicy::Fcfs, SimDuration::from_millis(50), 8, 1, vec![]);
        let now = SimTime::ZERO + SimDuration::from_secs(1);
        let task = h.next_task(&view(&ops, &in_flight, now), 0).unwrap();
        assert_eq!(task.op, 1, "op1 head (t=0) is older than op0 head (t=0.5s)");
    }

    #[test]
    fn hr_uses_topology() {
        let (_k, ops) = cells_with_queues(&[1, 1, 1]);
        let mut h = Haren::new(
            HarenPolicy::HighestRate,
            SimDuration::from_millis(50),
            8,
            1,
            vec![vec![1], vec![2], vec![]],
        );
        let in_flight = vec![false; 3];
        let task = h.next_task(&view(&ops, &in_flight, SimTime::ZERO), 0).unwrap();
        assert_eq!(task.op, 2, "sink-adjacent op has the highest rate");
    }
}
