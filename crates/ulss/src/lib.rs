//! # ulss — baseline user-level streaming schedulers
//!
//! The state-of-the-art UL-SS baselines the Lachesis paper compares
//! against: [`EdgeWise`] (USENIX ATC '19) and [`Haren`]
//! (DEBS '19). Both schedule operators from user space on a worker pool
//! inside the engine (see [`spe::PoolScheduler`]), which gives them fresh,
//! fine-grained metrics but couples them to the SPE and makes blocking
//! operators stall whole workers — the trade-off §6 of the paper explores.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod edgewise;
mod haren;

pub use edgewise::{edgewise_execution, EdgeWise};
pub use haren::{haren_execution, haren_execution_with_period, Haren, HarenPolicy};
