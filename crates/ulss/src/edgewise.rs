//! EdgeWise (Fu et al., USENIX ATC '19): a user-level streaming scheduler
//! for Storm with a **fixed** queue-size policy.
//!
//! EdgeWise replaces Storm's thread-per-operator model with a worker pool
//! (one worker per core) whose idle workers always run the ready operator
//! with the most pending input. The paper uses it as the single-query
//! baseline (§6.2); in contrast to Lachesis it is engine-coupled and has a
//! fixed policy.

use spe::{Execution, PoolScheduler, PoolTask, PoolView};

use simos::SimDuration;

/// The EdgeWise scheduling strategy: greedy maximum-queue-first.
#[derive(Debug, Clone)]
pub struct EdgeWise {
    max_batch: usize,
}

impl EdgeWise {
    /// Creates the strategy; `max_batch` caps how many tuples one task may
    /// process before re-deciding (EdgeWise drains, but bounded for
    /// responsiveness).
    pub fn new(max_batch: usize) -> Self {
        EdgeWise {
            max_batch: max_batch.max(1),
        }
    }
}

impl Default for EdgeWise {
    fn default() -> Self {
        // Operation-granularity batches keep EdgeWise responsive.
        EdgeWise::new(16)
    }
}

impl PoolScheduler for EdgeWise {
    fn next_task(&mut self, view: &PoolView<'_>, _worker: usize) -> Option<PoolTask> {
        // EdgeWise schedules *bolts* by pending-queue size; spouts
        // (ingress operators) run only when no bolt has work, and never
        // while spout flow control holds them back.
        let mut best: Option<(usize, usize)> = None;
        let mut spout: Option<usize> = None;
        for (i, op) in view.ops.iter().enumerate() {
            if view.in_flight[i] || op.in_queue().is_empty() {
                continue;
            }
            if op.is_ingress() {
                if spout.is_none() && !op.throttled() {
                    spout = Some(i);
                }
                continue;
            }
            let len = op.in_queue().len();
            if best.is_none_or(|(_, blen)| len > blen) {
                best = Some((i, len));
            }
        }
        if let Some((op, len)) = best {
            return Some(PoolTask {
                op,
                batch: len.min(self.max_batch),
            });
        }
        spout.map(|op| PoolTask {
            op,
            batch: self.max_batch,
        })
    }

    fn task_done(&mut self, _op: usize, _processed: usize) {}
}

/// The standard EdgeWise deployment: one worker per core, queue-scan
/// overhead charged per decision.
pub fn edgewise_execution(workers: usize) -> Execution {
    Execution::WorkerPool {
        workers,
        scheduler: Box::new(EdgeWise::default()),
        pick_cost: SimDuration::from_micros(15),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simos::{Kernel, SimTime};
    use spe::{CostModel, OpCell, OpCellRef, OpCellSpec, PassThrough, Queue, Stage, Tuple};

    fn cells(lens: &[usize]) -> (Kernel, Vec<OpCellRef>) {
        let mut kernel = Kernel::default();
        let node = kernel.add_node("n", 1);
        let cells = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let q = Queue::new(&mut kernel, &format!("q{i}"), node, None);
                for k in 0..len {
                    q.push(Tuple::new(SimTime::ZERO, k as u64, vec![]));
                }
                OpCell::new(
                    OpCellSpec {
                        id: i,
                        name: format!("op#{i}"),
                        query: "q".into(),
                        node,
                        is_ingress: false,
                        in_queue: q,
                        sink: None,
                        blocking: None,
                        backlog_penalty: None,
                        net_delay: SimDuration::ZERO,
                        seed: i as u64,
                        batch_max: 1,
                    },
                    vec![Stage {
                        logical: i,
                        name: format!("op{i}"),
                        logic: Box::new(PassThrough),
                        cost: CostModel::micros(10),
                    }],
                )
            })
            .collect();
        (kernel, cells)
    }

    #[test]
    fn picks_largest_queue() {
        let (_k, ops) = cells(&[3, 10, 5]);
        let in_flight = vec![false; 3];
        let mut ew = EdgeWise::default();
        let task = ew
            .next_task(
                &PoolView {
                    ops: &ops,
                    in_flight: &in_flight,
                    now: SimTime::ZERO,
                },
                0,
            )
            .unwrap();
        assert_eq!(task.op, 1);
        assert_eq!(task.batch, 10);
    }

    #[test]
    fn skips_in_flight_and_empty() {
        let (_k, ops) = cells(&[0, 10, 5]);
        let in_flight = vec![false, true, false];
        let mut ew = EdgeWise::default();
        let task = ew
            .next_task(
                &PoolView {
                    ops: &ops,
                    in_flight: &in_flight,
                    now: SimTime::ZERO,
                },
                0,
            )
            .unwrap();
        assert_eq!(task.op, 2);
    }

    #[test]
    fn returns_none_when_nothing_ready() {
        let (_k, ops) = cells(&[0, 0]);
        let in_flight = vec![false, false];
        let mut ew = EdgeWise::default();
        assert!(ew
            .next_task(
                &PoolView {
                    ops: &ops,
                    in_flight: &in_flight,
                    now: SimTime::ZERO,
                },
                0,
            )
            .is_none());
    }

    #[test]
    fn batch_capped() {
        let (_k, ops) = cells(&[500]);
        let in_flight = vec![false];
        let mut ew = EdgeWise::new(32);
        let task = ew
            .next_task(
                &PoolView {
                    ops: &ops,
                    in_flight: &in_flight,
                    now: SimTime::ZERO,
                },
                0,
            )
            .unwrap();
        assert_eq!(task.batch, 32);
    }
}
