//! Integration-test-only crate; see `tests/` alongside this file.
