//! Integration tests asserting the paper's qualitative claims end-to-end
//! through the whole stack: simulated OS → SPE engines → metric store →
//! drivers → policies → translators.

use std::cell::RefCell;
use std::rc::Rc;

use lachesis::{
    LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, BlockingConfig, EngineConfig, Execution, Placement, RunningQuery, SpeKind};
use ulss::{edgewise_execution, haren_execution, HarenPolicy};

fn store() -> Rc<RefCell<TimeSeriesStore>> {
    Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))))
}

struct Run {
    throughput: f64,
    latency: f64,
    e2e: f64,
}

fn run_lr_storm(rate: f64, with_lachesis: bool) -> Run {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let st = store();
    let q = deploy(
        &mut kernel,
        queries::lr(rate, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&st)),
    )
    .unwrap();
    if with_lachesis {
        LachesisBuilder::new()
            .driver(StoreDriver::storm(vec![q.clone()], st))
            .policy(
                0,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                NiceTranslator::new(),
            )
            .build()
            .start(&mut kernel);
    }
    kernel.run_for(SimDuration::from_secs(4));
    q.reset_stats();
    kernel.run_for(SimDuration::from_secs(16));
    Run {
        throughput: q.ingress_total() as f64 / 16.0,
        latency: q.latency_histogram().mean().unwrap_or(0.0),
        e2e: q.e2e_histogram().mean().unwrap_or(0.0),
    }
}

/// §6.3 / Fig. 9: near the OS saturation point, Lachesis-QS sustains higher
/// throughput and much lower latency on LR/Storm.
#[test]
fn lachesis_beats_os_on_linear_road() {
    let os = run_lr_storm(4_500.0, false);
    let la = run_lr_storm(4_500.0, true);
    assert!(
        la.throughput > os.throughput * 1.05,
        "throughput: lachesis {} vs os {}",
        la.throughput,
        os.throughput
    );
    assert!(
        la.latency < os.latency / 3.0,
        "latency: lachesis {} vs os {}",
        la.latency,
        os.latency
    );
    assert!(la.e2e < os.e2e, "e2e: {} vs {}", la.e2e, os.e2e);
}

/// §6.1: below saturation every scheduler keeps up and latencies are small;
/// custom scheduling must not hurt the easy case.
#[test]
fn all_schedulers_keep_up_below_saturation() {
    for with_lachesis in [false, true] {
        let r = run_lr_storm(2_000.0, with_lachesis);
        assert!(
            (1_960.0..=2_040.0).contains(&r.throughput),
            "tput {} (lachesis={with_lachesis})",
            r.throughput
        );
        assert!(r.latency < 0.05, "latency {} (lachesis={with_lachesis})", r.latency);
    }
}

/// §6.2: on ETL, Lachesis-QS at least matches EdgeWise's throughput while
/// both beat plain OS scheduling.
#[test]
fn etl_ordering_matches_paper() {
    let run = |execution: Option<Execution>, with_lachesis: bool| -> Run {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let st = store();
        let mut config = EngineConfig::storm();
        if let Some(e) = execution {
            config.execution = e;
        }
        let q = deploy(
            &mut kernel,
            queries::etl(1_750.0, 1),
            config,
            &Placement::single(node),
            Some(Rc::clone(&st)),
        )
        .unwrap();
        if with_lachesis {
            LachesisBuilder::new()
                .driver(StoreDriver::storm(vec![q.clone()], st))
                .policy(
                    0,
                    Scope::AllQueries,
                    QueueSizePolicy::default(),
                    NiceTranslator::new(),
                )
                .build()
                .start(&mut kernel);
        }
        kernel.run_for(SimDuration::from_secs(4));
        q.reset_stats();
        kernel.run_for(SimDuration::from_secs(16));
        Run {
            throughput: q.ingress_total() as f64 / 16.0,
            latency: q.latency_histogram().mean().unwrap_or(0.0),
            e2e: q.e2e_histogram().mean().unwrap_or(0.0),
        }
    };
    let os = run(None, false);
    let edgewise = run(Some(edgewise_execution(4)), false);
    let la = run(None, true);
    assert!(
        la.throughput >= edgewise.throughput * 0.99,
        "lachesis {} vs edgewise {}",
        la.throughput,
        edgewise.throughput
    );
    assert!(
        edgewise.throughput > os.throughput * 1.02,
        "edgewise {} vs os {}",
        edgewise.throughput,
        os.throughput
    );
    assert!(la.e2e < os.e2e, "e2e: lachesis {} vs os {}", la.e2e, os.e2e);
}

/// §6.4 / Fig. 16: with blocking operators, Lachesis (OS threads) sustains
/// more than Haren (whose workers stall).
#[test]
fn blocking_hurts_haren_more_than_lachesis() {
    // A third of the operators block: enough that the affected subset is
    // not an accident of the RNG stream sampling it.
    let blocking = Some(BlockingConfig {
        fraction: 0.33,
        probability: 0.01,
        max_duration: SimDuration::from_millis(200),
    });
    let graph = || queries::syn(1_900.0, queries::SynConfig::default());
    let downstream = queries::downstream_indices(&graph());
    let run = |ulss: bool| -> f64 {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let st = store();
        let mut config = EngineConfig::liebre();
        config.blocking = blocking;
        if ulss {
            config.execution = haren_execution(4, HarenPolicy::Fcfs, downstream.clone());
        }
        let q = deploy(
            &mut kernel,
            graph(),
            config,
            &Placement::single(node),
            Some(Rc::clone(&st)),
        )
        .unwrap();
        if !ulss {
            LachesisBuilder::new()
                .driver(StoreDriver::liebre(vec![q.clone()], st))
                .policy(
                    0,
                    Scope::AllQueries,
                    lachesis::FcfsPolicy::default(),
                    lachesis::CpuSharesTranslator::new("fcfs"),
                )
                .build()
                .start(&mut kernel);
        }
        kernel.run_for(SimDuration::from_secs(4));
        q.reset_stats();
        kernel.run_for(SimDuration::from_secs(16));
        q.egress_total() as f64 / 16.0
    };
    let haren = run(true);
    let la = run(false);
    assert!(
        la > haren * 1.05,
        "egress throughput with blocking: lachesis {la} vs haren {haren}"
    );
}

/// §6.5 / Fig. 17: doubling the nodes (and parallelism) raises sustainable
/// throughput, and Lachesis still helps per node.
#[test]
fn scale_out_scales_and_lachesis_still_helps() {
    let run = |parallelism: usize, with_lachesis: bool| -> f64 {
        let mut kernel = Kernel::new(machines::odroid_config());
        let nodes: Vec<_> = (0..parallelism)
            .map(|i| machines::add_odroid(&mut kernel, &format!("o{i}")))
            .collect();
        let st = store();
        let q = deploy(
            &mut kernel,
            queries::lr_with_parallelism(9_000.0, 1, parallelism),
            EngineConfig::storm(),
            &Placement::spread(nodes.clone()),
            Some(Rc::clone(&st)),
        )
        .unwrap();
        if with_lachesis {
            for &node in &nodes {
                LachesisBuilder::new()
                    .driver(StoreDriver::storm(vec![q.clone()], Rc::clone(&st)))
                    .policy(
                        0,
                        Scope::Node(node),
                        QueueSizePolicy::default(),
                        NiceTranslator::new(),
                    )
                    .build()
                    .start(&mut kernel);
            }
        }
        kernel.run_for(SimDuration::from_secs(4));
        q.reset_stats();
        kernel.run_for(SimDuration::from_secs(12));
        q.ingress_total() as f64 / 12.0
    };
    let os1 = run(1, false);
    let os2 = run(2, false);
    let la2 = run(2, true);
    assert!(os2 > os1 * 1.4, "scale-out: x1={os1} x2={os2}");
    assert!(la2 > os2 * 1.05, "lachesis on 2 nodes: {la2} vs {os2}");
}

/// G2/Fig. 4: the same QS policy runs against Storm (which exposes raw
/// counters) and Liebre (which exposes cost/selectivity directly), with the
/// metric provider deriving whatever is missing.
#[test]
fn same_policy_schedules_different_spes() {
    for kind in [SpeKind::Storm, SpeKind::Liebre] {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let st = store();
        let config = match kind {
            SpeKind::Storm => EngineConfig::storm(),
            _ => EngineConfig::liebre(),
        };
        let q = deploy(
            &mut kernel,
            queries::lr(4_500.0, 1),
            config,
            &Placement::single(node),
            Some(Rc::clone(&st)),
        )
        .unwrap();
        LachesisBuilder::new()
            .driver(StoreDriver::new(kind, vec![q.clone()], st))
            .policy(
                0,
                Scope::AllQueries,
                lachesis::HighestRatePolicy::default(),
                NiceTranslator::new(),
            )
            .build()
            .start(&mut kernel);
        kernel.run_for(SimDuration::from_secs(5));
        // HR needs cost+selectivity: Liebre provides them, Storm needs the
        // provider to derive them. If derivation failed, the middleware
        // callback would have panicked by now.
        let any_nice_set = q.threads().iter().any(|&t| {
            kernel.thread_info(t).unwrap().nice != simos::Nice::DEFAULT
        });
        assert!(any_nice_set, "HR produced a schedule on {kind:?}");
    }
}

/// The whole stack is deterministic: identical runs give identical results.
#[test]
fn full_stack_determinism() {
    let run = || {
        let r = run_lr_storm(5_000.0, true);
        (r.throughput.to_bits(), r.latency.to_bits(), r.e2e.to_bits())
    };
    assert_eq!(run(), run());
}

/// Lachesis' own footprint stays negligible: a scheduled run performs the
/// same simulated work with <5% extra context switches.
#[test]
fn lachesis_overhead_is_small() {
    let ctx = |with_lachesis: bool| -> u64 {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let st = store();
        let q = deploy(
            &mut kernel,
            queries::lr(2_000.0, 1),
            EngineConfig::storm(),
            &Placement::single(node),
            Some(Rc::clone(&st)),
        )
        .unwrap();
        if with_lachesis {
            LachesisBuilder::new()
                .driver(StoreDriver::storm(vec![q.clone()], st))
                .policy(
                    0,
                    Scope::AllQueries,
                    QueueSizePolicy::default(),
                    NiceTranslator::new(),
                )
                .build()
                .start(&mut kernel);
        }
        kernel.run_for(SimDuration::from_secs(10));
        kernel.node_stats(node).unwrap().ctx_switches
    };
    let base = ctx(false) as f64;
    let with = ctx(true) as f64;
    assert!(
        with < base * 1.3,
        "context switches: {with} with lachesis vs {base} without"
    );
}

/// Helper used by several assertions: RunningQuery exposes consistent
/// counters.
#[test]
fn running_query_counters_are_consistent() {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let q: RunningQuery = deploy(
        &mut kernel,
        queries::vs(1_000.0, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    kernel.run_for(SimDuration::from_secs(10));
    assert!(q.source_emitted() >= q.ingress_total());
    assert!(q.op_count() == 15);
    assert_eq!(q.threads().len(), 15);
    assert_eq!(q.queue_sizes().len(), 15);
}
