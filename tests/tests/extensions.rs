//! End-to-end tests of the future-work extension mechanisms (§8):
//! CPU quotas for multi-tenant isolation and real-time priorities for
//! latency-critical operators.

use std::rc::Rc;

use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery};

fn deploy_lr(kernel: &mut Kernel, node: simos::NodeId, rate: f64, seed: u64) -> RunningQuery {
    deploy(
        kernel,
        queries::lr(rate, seed),
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap()
}

/// A well-behaved query shares a node with an overloaded noisy neighbour.
/// Capping the neighbour's cgroup with a CPU quota protects the victim —
/// the isolation `cpu.shares` alone cannot express (shares are only
/// relative weights; quotas are hard ceilings).
#[test]
fn cpu_quota_isolates_noisy_neighbour()  {
    let run = |with_quota: bool| -> f64 {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let victim = deploy_lr(&mut kernel, node, 2_000.0, 1);
        let noisy = deploy_lr(&mut kernel, node, 8_000.0, 2);
        if with_quota {
            // Operations any operator (or Lachesis' quota translator)
            // could perform: group the noisy tenant and cap it at 2 cores.
            let root = kernel.node_root(node).unwrap();
            let jail = kernel.create_cgroup(root, "noisy-tenant", 1024).unwrap();
            for tid in noisy.threads() {
                kernel.move_to_cgroup(tid, jail).unwrap();
            }
            kernel
                .set_cpu_quota(
                    jail,
                    Some((SimDuration::from_millis(200), SimDuration::from_millis(100))),
                )
                .unwrap();
        }
        kernel.run_for(SimDuration::from_secs(4));
        victim.reset_stats();
        kernel.run_for(SimDuration::from_secs(12));
        victim.latency_histogram().mean().unwrap_or(0.0)
    };
    let unprotected = run(false);
    let protected = run(true);
    assert!(
        protected < unprotected / 2.0,
        "victim latency: {protected} with quota vs {unprotected} without"
    );
}

/// Promoting the latency-critical sinks of a loaded query into the RT band
/// shortens their scheduling delay without starving the rest (sinks block
/// most of the time).
#[test]
fn rt_band_helps_blocking_sinks() {
    let run = |rt_sinks: bool| -> f64 {
        let mut kernel = Kernel::new(machines::odroid_config());
        let node = machines::add_odroid(&mut kernel, "odroid");
        let q = deploy_lr(&mut kernel, node, 4_200.0, 1);
        if rt_sinks {
            for (i, spec) in q.physical().ops.iter().enumerate() {
                if spec.egress.is_some() {
                    let tid = q.cell(i).thread().unwrap();
                    kernel.set_rt_priority(tid, Some(50)).unwrap();
                }
            }
        }
        kernel.run_for(SimDuration::from_secs(4));
        q.reset_stats();
        kernel.run_for(SimDuration::from_secs(12));
        // Throughput must not collapse: sinks are not CPU bound. (The
        // query runs near saturation, so mild spout throttling is fine.)
        assert!(q.ingress_total() > 3_500 * 12, "{}", q.ingress_total());
        q.latency_histogram().quantile(0.99).unwrap_or(0.0)
    };
    let cfs_p99 = run(false);
    let rt_p99 = run(true);
    assert!(
        rt_p99 <= cfs_p99 * 1.05,
        "RT sinks must not hurt tail latency: {rt_p99} vs {cfs_p99}"
    );
}

/// The quota translator driven by Lachesis end-to-end: per-operator quota
/// caps still let an overloaded query make progress.
#[test]
fn lachesis_quota_translator_end_to_end() {
    use lachesis::{CpuQuotaTranslator, LachesisBuilder, QueueSizePolicy, Scope, StoreDriver};
    use lachesis_metrics::TimeSeriesStore;
    use std::cell::RefCell;

    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = Rc::new(RefCell::new(TimeSeriesStore::new(SimDuration::from_secs(1))));
    let q = deploy(
        &mut kernel,
        queries::lr(4_000.0, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )
    .unwrap();
    LachesisBuilder::new()
        .driver(StoreDriver::storm(vec![q.clone()], store))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            CpuQuotaTranslator::new("qs"),
        )
        .build()
        .start(&mut kernel);
    kernel.run_for(SimDuration::from_secs(10));
    // Every operator thread landed in a quota-capped cgroup...
    for i in 0..q.op_count() {
        let tid = q.cell(i).thread().unwrap();
        let cg = kernel.thread_info(tid).unwrap().cgroup;
        let info = kernel.cgroup_info(cg).unwrap();
        assert!(info.name.contains("lachesis-quota-qs"), "{}", info.name);
        assert!(info.quota.is_some(), "operator {i} has a quota");
    }
    // ...and the query still flows.
    assert!(q.egress_total() > 10_000, "{}", q.egress_total());
}
