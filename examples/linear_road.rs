//! Linear Road, scheduled three ways — the paper's Fig. 1/9 story in one
//! binary: default OS scheduling vs RANDOM priorities vs Lachesis-QS, at a
//! rate past the OS scheduler's saturation point.
//!
//! ```text
//! cargo run --release -p lachesis-examples --example linear_road
//! ```

use std::error::Error;

use lachesis::{
    LachesisBuilder, NiceTranslator, QueueSizePolicy, RandomPolicy, Scope, StoreDriver,
};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement};

const RATE: f64 = 4_500.0;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    Os,
    Random,
    LachesisQs,
}

fn run(mode: Mode) -> Result<(f64, f64, f64), Box<dyn Error>> {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = std::rc::Rc::new(std::cell::RefCell::new(TimeSeriesStore::new(
        SimDuration::from_secs(1),
    )));
    let query = deploy(
        &mut kernel,
        queries::lr(RATE, 7),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(store.clone()),
    )?;
    match mode {
        Mode::Os => {}
        Mode::Random => {
            LachesisBuilder::new()
                .driver(StoreDriver::storm(vec![query.clone()], store))
                .policy(
                    0,
                    Scope::AllQueries,
                    RandomPolicy::new(SimDuration::from_secs(1), 99),
                    NiceTranslator::new(),
                )
                .build()
                .start(&mut kernel);
        }
        Mode::LachesisQs => {
            LachesisBuilder::new()
                .driver(StoreDriver::storm(vec![query.clone()], store))
                .policy(
                    0,
                    Scope::AllQueries,
                    QueueSizePolicy::default(),
                    NiceTranslator::new(),
                )
                .build()
                .start(&mut kernel);
        }
    }
    kernel.run_for(SimDuration::from_secs(5));
    query.reset_stats();
    kernel.run_for(SimDuration::from_secs(30));
    Ok((
        query.ingress_total() as f64 / 30.0,
        query.latency_histogram().mean().unwrap_or(0.0),
        query.e2e_histogram().mean().unwrap_or(0.0),
    ))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Linear Road @ {RATE:.0} t/s on a 4-core edge device (storm-like engine)\n");
    println!(
        "{:<14} {:>14} {:>14} {:>14}",
        "scheduler", "tput (t/s)", "latency (ms)", "e2e (ms)"
    );
    for (name, mode) in [
        ("OS", Mode::Os),
        ("RANDOM", Mode::Random),
        ("LACHESIS-QS", Mode::LachesisQs),
    ] {
        let (tput, lat, e2e) = run(mode)?;
        println!(
            "{:<14} {:>14.0} {:>14.2} {:>14.2}",
            name,
            tput,
            lat * 1e3,
            e2e * 1e3
        );
    }
    println!("\nExpected shape (paper Fig. 9): LACHESIS-QS sustains the rate with");
    println!("low latency; OS saturates below it; RANDOM behaves like OS or worse.");
    Ok(())
}
