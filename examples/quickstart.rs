//! Quickstart: deploy a streaming query on the simulated edge device and
//! let Lachesis schedule it.
//!
//! ```text
//! cargo run -p lachesis-examples --example quickstart
//! ```

use std::error::Error;

use lachesis::{LachesisBuilder, NiceTranslator, QueueSizePolicy, Scope, StoreDriver};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement};

fn main() -> Result<(), Box<dyn Error>> {
    // 1. A simulated Odroid-class edge device (4 cores).
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");

    // 2. The Graphite-like metric store every SPE reports into (1 s
    //    resolution, which bounds Lachesis' scheduling period — §6.1).
    let store = std::rc::Rc::new(std::cell::RefCell::new(TimeSeriesStore::new(
        SimDuration::from_secs(1),
    )));

    // 3. Deploy the RIoTBench ETL query on the Storm-like engine at a rate
    //    slightly past the default scheduler's comfort zone.
    let query = deploy(
        &mut kernel,
        queries::etl(1_550.0, 7),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(store.clone()),
    )?;

    // 4. Start Lachesis: Queue-Size policy applied through thread nice.
    //    No SPE internals touched — only the driver's public APIs.
    LachesisBuilder::new()
        .driver(StoreDriver::storm(vec![query.clone()], store))
        .policy(
            0,
            Scope::AllQueries,
            QueueSizePolicy::default(),
            NiceTranslator::new(),
        )
        .build()
        .start(&mut kernel);

    // 5. Run one simulated minute and report.
    kernel.run_for(SimDuration::from_secs(10));
    query.reset_stats(); // discard warm-up
    kernel.run_for(SimDuration::from_secs(50));

    let throughput = query.ingress_total() as f64 / 50.0;
    let latency = query.latency_histogram();
    let e2e = query.e2e_histogram();
    println!("ETL on storm-like engine, Lachesis-QS via nice:");
    println!("  throughput : {throughput:.0} tuples/s");
    println!(
        "  latency    : mean {:.2} ms, p99 {:.2} ms",
        latency.mean().unwrap_or(0.0) * 1e3,
        latency.quantile(0.99).unwrap_or(0.0) * 1e3
    );
    println!(
        "  end-to-end : mean {:.2} ms",
        e2e.mean().unwrap_or(0.0) * 1e3
    );
    println!("  queues     : {:?}", query.queue_sizes());
    let stats = kernel.node_stats(node)?;
    println!(
        "  cpu        : {:.0}% utilized, {} context switches",
        stats.utilization() * 100.0,
        stats.ctx_switches
    );
    Ok(())
}
