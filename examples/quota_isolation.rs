//! Multi-tenant isolation with the §8 extension mechanisms: a well-behaved
//! query shares an edge device with an overloaded "noisy neighbour". CPU
//! quotas (hard caps, unlike the relative `cpu.shares`) protect the victim;
//! the real-time band protects its sink's tail latency.
//!
//! ```text
//! cargo run --release -p lachesis-examples --example quota_isolation
//! ```

use std::error::Error;

use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery};

fn deploy_pair(kernel: &mut Kernel, node: simos::NodeId) -> (RunningQuery, RunningQuery) {
    let victim = deploy(
        kernel,
        queries::lr(3_000.0, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    let noisy = deploy(
        kernel,
        queries::lr(9_000.0, 2), // far beyond what the device can absorb
        EngineConfig::storm(),
        &Placement::single(node),
        None,
    )
    .unwrap();
    (victim, noisy)
}

fn run(quota: bool) -> Result<(f64, f64), Box<dyn Error>> {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let (victim, noisy) = deploy_pair(&mut kernel, node);

    if quota {
        // Cap the noisy tenant at 1 of the 4 cores (100ms per 100ms window).
        let root = kernel.node_root(node)?;
        let jail = kernel.create_cgroup(root, "noisy-tenant", 1024)?;
        for tid in noisy.threads() {
            kernel.move_to_cgroup(tid, jail)?;
        }
        kernel.set_cpu_quota(
            jail,
            Some((SimDuration::from_millis(100), SimDuration::from_millis(100))),
        )?;
        // And lift the victim's egress operators into the RT band: they
        // block most of the time, so this is starvation-safe and trims
        // their scheduling delay.
        for (i, spec) in victim.physical().ops.iter().enumerate() {
            if spec.egress.is_some() {
                kernel.set_rt_priority(victim.cell(i).thread().unwrap(), Some(50))?;
            }
        }
    }

    kernel.run_for(SimDuration::from_secs(5));
    victim.reset_stats();
    noisy.reset_stats();
    kernel.run_for(SimDuration::from_secs(25));
    Ok((
        victim.latency_histogram().mean().unwrap_or(0.0) * 1e3,
        noisy.ingress_total() as f64 / 25.0,
    ))
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Victim query (3000 t/s) vs noisy neighbour (9000 t/s offered)");
    println!("on 4 cores, with and without a CPU quota on the neighbour:\n");
    let (v_lat, n_tput) = run(false)?;
    println!("  no quota : victim latency {v_lat:>10.2} ms, neighbour {n_tput:.0} t/s");
    let (v_lat, n_tput) = run(true)?;
    println!("  quota+RT : victim latency {v_lat:>10.2} ms, neighbour {n_tput:.0} t/s");
    println!("\ncpu.shares alone cannot express this: shares are relative weights,");
    println!("so an overloaded neighbour still claims idle cycles; the quota is a");
    println!("hard ceiling (paper §8 future-work mechanisms, crates/simos +");
    println!("lachesis::CpuQuotaTranslator / RealTimeTranslator).");
    Ok(())
}
