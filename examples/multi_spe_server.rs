//! Multi-SPE scheduling (the paper's §6.6): three different engines share
//! one server and a single Lachesis instance schedules all of them — a
//! cgroup per query with equal cpu.shares, QS + nice per operator inside.
//!
//! ```text
//! cargo run --release -p lachesis-examples --example multi_spe_server
//! ```

use std::error::Error;
use std::rc::Rc;

use lachesis::{CombinedTranslator, LachesisBuilder, QueueSizePolicy, Scope, StoreDriver};
use lachesis_metrics::TimeSeriesStore;
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement, RunningQuery};

fn report(name: &str, q: &RunningQuery, secs: f64) {
    println!(
        "  {:<12} tput {:>7.0} t/s   latency {:>9.2} ms   e2e {:>9.2} ms",
        name,
        q.ingress_total() as f64 / secs,
        q.latency_histogram().mean().unwrap_or(0.0) * 1e3,
        q.e2e_histogram().mean().unwrap_or(0.0) * 1e3,
    );
}

fn run(with_lachesis: bool) -> Result<(), Box<dyn Error>> {
    let mut kernel = Kernel::new(machines::server_config());
    let node = machines::add_server(&mut kernel, "xeon");
    let store = Rc::new(std::cell::RefCell::new(TimeSeriesStore::new(
        SimDuration::from_secs(1),
    )));

    // VoipStream on the Storm-like engine, Linear Road on the Flink-like
    // engine, four synthetic pipelines on the Liebre-like engine.
    let vs = deploy(
        &mut kernel,
        queries::vs(1_400.0, 1),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )?;
    let lr = deploy(
        &mut kernel,
        queries::lr(3_200.0, 1),
        EngineConfig::flink(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )?;
    let syn: Vec<RunningQuery> = (0..4)
        .map(|i| {
            deploy(
                &mut kernel,
                queries::syn_single(i, 90.0, queries::SynConfig::default()),
                EngineConfig::liebre(),
                &Placement::single(node),
                Some(Rc::clone(&store)),
            )
        })
        .collect::<Result<_, _>>()?;

    if with_lachesis {
        // One driver per SPE; each binding uses its own combined
        // translator (cgroup per query + nice per operator).
        let mut builder = LachesisBuilder::new()
            .driver(StoreDriver::storm(vec![vs.clone()], Rc::clone(&store)))
            .driver(StoreDriver::flink(vec![lr.clone()], Rc::clone(&store)))
            .driver(StoreDriver::liebre(syn.clone(), Rc::clone(&store)));
        for d in 0..3 {
            builder = builder.policy(
                d,
                Scope::AllQueries,
                QueueSizePolicy::default(),
                CombinedTranslator::new(&format!("qs{d}")),
            );
        }
        builder.build().start(&mut kernel);
    }

    kernel.run_for(SimDuration::from_secs(5));
    vs.reset_stats();
    lr.reset_stats();
    for q in &syn {
        q.reset_stats();
    }
    kernel.run_for(SimDuration::from_secs(25));

    println!(
        "{} scheduling {} queries on 3 SPEs:",
        if with_lachesis { "LACHESIS" } else { "OS" },
        2 + syn.len()
    );
    report("storm/VS", &vs, 25.0);
    report("flink/LR", &lr, 25.0);
    for (i, q) in syn.iter().enumerate() {
        report(&format!("liebre/syn{i}"), q, 25.0);
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    run(false)?;
    run(true)?;
    println!("Lachesis is the only scheduler here that can prioritize across");
    println!("engines: no user-level scheduler spans Storm, Flink AND Liebre (G5).");
    Ok(())
}
