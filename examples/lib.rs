//! Examples live next to this file; run with `cargo run -p lachesis-examples --example quickstart`.
