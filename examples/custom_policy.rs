//! Writing your own scheduling policy (paper G1/§5.1): a user-defined
//! *high-level* policy expressed over **logical** operators, converted to a
//! physical schedule with the built-in transformation rule (Algorithm 2),
//! and enforced through the standard nice translator.
//!
//! The example policy implements the paper's §2 scenario: one branch of
//! Linear Road (the variable-toll branch) is business-critical and must be
//! prioritized over the fixed-toll branch.
//!
//! ```text
//! cargo run --release -p lachesis-examples --example custom_policy
//! ```

use std::error::Error;
use std::rc::Rc;

use lachesis::{
    transform_logical, LachesisBuilder, LogicalSchedule, NiceTranslator, Policy, PolicyView,
    Scope, SinglePrioritySchedule, StoreDriver,
};
use lachesis_metrics::{MetricName, TimeSeriesStore};
use simos::{machines, Kernel, SimDuration};
use spe::{deploy, EngineConfig, Placement};

/// Prioritizes the operators of one query branch, expressed over *logical*
/// operators so the policy is reusable across deployments and SPEs (§5.1).
/// The shared upstream path keeps a middle priority — starving it would
/// delay the critical branch too.
struct BranchPriorityPolicy {
    /// Logical operator ids of the critical branch.
    critical: Vec<usize>,
    /// Logical operator ids shared by all branches (source, dispatcher).
    shared: Vec<usize>,
    period: SimDuration,
}

impl Policy for BranchPriorityPolicy {
    fn name(&self) -> &str {
        "branch-priority"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn required_metrics(&self) -> Vec<MetricName> {
        Vec::new() // static priorities need no runtime metrics
    }

    fn schedule(&mut self, view: &PolicyView<'_>) -> SinglePrioritySchedule {
        // High-level schedule over logical operators...
        let mut logical = LogicalSchedule::new();
        for op in view.scope {
            for l in view.driver.logical_of(*op) {
                let priority = if self.critical.contains(&l) {
                    10.0
                } else if self.shared.contains(&l) {
                    5.0
                } else {
                    1.0
                };
                logical.insert(l, priority);
            }
        }
        // ...converted to the physical DAG by the reusable transformation
        // rule (fission copies priorities, fusion takes the maximum).
        transform_logical(view.driver, 0, &logical)
    }
}

fn run(with_policy: bool) -> Result<Vec<(String, f64)>, Box<dyn Error>> {
    let mut kernel = Kernel::new(machines::odroid_config());
    let node = machines::add_odroid(&mut kernel, "odroid");
    let store = Rc::new(std::cell::RefCell::new(TimeSeriesStore::new(
        SimDuration::from_secs(1),
    )));
    let query = deploy(
        &mut kernel,
        queries::lr(4_200.0, 7),
        EngineConfig::storm(),
        &Placement::single(node),
        Some(Rc::clone(&store)),
    )?;

    if with_policy {
        // Branch 1 of LR (paper Fig. 2): seg_stats -> congestion ->
        // var_toll -> toll_sink must deliver congestion tolls promptly.
        let by_name = |names: &[&str]| -> Vec<usize> {
            names
                .iter()
                .map(|n| queries::LR_OPS.iter().position(|o| o == n).unwrap())
                .collect()
        };
        let critical = by_name(&["seg_stats", "congestion", "var_toll", "toll_sink"]);
        let shared = by_name(&["source", "dispatcher"]);
        LachesisBuilder::new()
            .driver(StoreDriver::storm(vec![query.clone()], store))
            .policy(
                0,
                Scope::AllQueries,
                BranchPriorityPolicy {
                    critical,
                    shared,
                    period: SimDuration::from_secs(1),
                },
                NiceTranslator::new(),
            )
            .build()
            .start(&mut kernel);
    }

    kernel.run_for(SimDuration::from_secs(5));
    query.reset_stats();
    kernel.run_for(SimDuration::from_secs(30));

    Ok(query
        .sinks()
        .iter()
        .map(|(logical, sink)| {
            (
                query.logical_names()[*logical].clone(),
                sink.borrow().latency().mean().unwrap_or(0.0) * 1e3,
            )
        })
        .collect())
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("Linear Road @ 4200 t/s; prioritizing the variable-toll branch\n");
    let baseline = run(false)?;
    let prioritized = run(true)?;
    println!(
        "{:<14} {:>22} {:>22}",
        "sink", "OS latency (ms)", "prioritized (ms)"
    );
    for ((name, base), (_, prio)) in baseline.iter().zip(&prioritized) {
        println!("{:<14} {:>22.2} {:>22.2}", name, base, prio);
    }
    println!("\nThe policy is written over *logical* operators and converted to");
    println!("the physical DAG with the built-in transformation rule (Alg. 2),");
    println!("so it would apply unchanged to a fissioned/fused deployment.");
    Ok(())
}
